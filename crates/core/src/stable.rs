//! Stable, platform-independent binary encoding of parameter types.
//!
//! The `nd-sweep` result cache is *content-addressed*: a job's cache key is
//! a cryptographic hash of every parameter that influences its result. That
//! requires an encoding that is stable across runs, platforms and — unlike
//! `std::hash::Hash` — across compiler versions, and that is defined for
//! the `f64` fields (α, probabilities) `derive(Hash)` cannot handle.
//!
//! [`StableEncode`] is that encoding: each value appends a tag byte and a
//! fixed-endian payload to a byte buffer. Implementations exist for the
//! primitive types and for every parameter struct in this crate; `nd-sim`
//! extends it to `SimConfig`.
//!
//! The encoding is *injective per type* (two different values of the same
//! type encode differently) and tag-separated across types, so a composite
//! key built by concatenating fields cannot alias a different composite
//! with the same flattened bytes.

use crate::coverage::OverlapModel;
use crate::params::{DutyCycle, RadioParams};
use crate::time::Tick;

/// Append a stable binary encoding of `self` to `out`.
///
/// See the module docs for the guarantees. Floats are encoded by their IEEE
/// bit pattern with `-0.0` normalized to `0.0` and all NaNs collapsed to
/// the canonical quiet NaN, so logically equal parameter sets hash equally.
pub trait StableEncode {
    /// Append the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// The encoding as a fresh buffer.
    fn encoded(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }
}

// tag bytes: one per encodable type/shape
const TAG_BOOL: u8 = 0x01;
const TAG_U64: u8 = 0x02;
const TAG_I64: u8 = 0x03;
const TAG_F64: u8 = 0x04;
const TAG_STR: u8 = 0x05;
const TAG_SEQ: u8 = 0x06;
const TAG_NONE: u8 = 0x07;
const TAG_SOME: u8 = 0x08;
const TAG_TICK: u8 = 0x10;
const TAG_RADIO: u8 = 0x11;
const TAG_DUTY: u8 = 0x12;
const TAG_OVERLAP: u8 = 0x13;

impl StableEncode for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(TAG_BOOL);
        out.push(*self as u8);
    }
}

impl StableEncode for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(TAG_U64);
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl StableEncode for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
}

impl StableEncode for i64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(TAG_I64);
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl StableEncode for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        let canon = if self.is_nan() {
            f64::NAN
        } else if *self == 0.0 {
            0.0
        } else {
            *self
        };
        out.push(TAG_F64);
        out.extend_from_slice(&canon.to_bits().to_le_bytes());
    }
}

impl StableEncode for str {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(TAG_STR);
        (self.len() as u64).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl StableEncode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_str().encode(out);
    }
}

impl<T: StableEncode> StableEncode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(TAG_NONE),
            Some(v) => {
                out.push(TAG_SOME);
                v.encode(out);
            }
        }
    }
}

impl<T: StableEncode> StableEncode for [T] {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(TAG_SEQ);
        (self.len() as u64).encode(out);
        for v in self {
            v.encode(out);
        }
    }
}

impl<T: StableEncode> StableEncode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_slice().encode(out);
    }
}

impl StableEncode for Tick {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(TAG_TICK);
        out.extend_from_slice(&self.as_nanos().to_le_bytes());
    }
}

impl StableEncode for OverlapModel {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(TAG_OVERLAP);
        out.push(match self {
            OverlapModel::Start => 0,
            OverlapModel::AnyOverlap => 1,
            OverlapModel::FullPacket => 2,
        });
    }
}

impl StableEncode for RadioParams {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(TAG_RADIO);
        self.omega.encode(out);
        self.alpha.encode(out);
        self.do_tx.encode(out);
        self.do_rx.encode(out);
        self.do_tx_rx.encode(out);
        self.do_rx_tx.encode(out);
    }
}

impl StableEncode for DutyCycle {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(TAG_DUTY);
        self.beta.encode(out);
        self.gamma.encode(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip_injectively() {
        assert_ne!(1u64.encoded(), 2u64.encoded());
        assert_ne!(1u64.encoded(), 1i64.encoded(), "tag-separated types");
        assert_ne!("a".encoded(), "b".encoded());
        assert_ne!(true.encoded(), false.encoded());
        assert_ne!(Some(1u64).encoded(), None::<u64>.encoded());
    }

    #[test]
    fn floats_are_canonicalized() {
        assert_eq!((-0.0f64).encoded(), 0.0f64.encoded());
        assert_eq!(f64::NAN.encoded(), (f64::NAN * 2.0).encoded());
        assert_ne!(0.1f64.encoded(), 0.2f64.encoded());
    }

    #[test]
    fn seq_length_prefix_prevents_aliasing() {
        let a: Vec<u64> = vec![1, 2];
        let b: Vec<u64> = vec![1];
        let c: Vec<u64> = vec![2];
        let mut bc = Vec::new();
        b.encode(&mut bc);
        c.encode(&mut bc);
        assert_ne!(a.encoded(), bc);
    }

    #[test]
    fn param_structs_encode_all_fields() {
        let base = RadioParams::paper_default();
        let mut tweaked = base;
        tweaked.alpha = 2.0;
        assert_ne!(base.encoded(), tweaked.encoded());
        let mut t2 = base;
        t2.do_tx_rx = Tick::from_micros(1);
        assert_ne!(base.encoded(), t2.encoded());

        let d1 = DutyCycle::new(0.1, 0.2);
        let d2 = DutyCycle::new(0.2, 0.1);
        assert_ne!(d1.encoded(), d2.encoded());

        assert_ne!(
            OverlapModel::Start.encoded(),
            OverlapModel::FullPacket.encoded()
        );
    }
}
