//! The mutual-exclusive one-way discovery bound (Appendix C, Theorem C.1 of
//! the paper).
//!
//! When the beacons on each device are scheduled in a fixed temporal
//! relation ζ to that device's own reception windows, the offsets covered by
//! E's beacons against F's windows *determine* (Eq. 34) the offsets covered
//! in the reverse direction. A quadruple of sequences can therefore split
//! the coverage work: each device only covers half the offsets, halving the
//! required beacons — and the worst-case latency.

/// Theorem C.1, Eq. 35: the lowest worst-case latency for *one-way*
/// discovery (either E discovers F or F discovers E, whichever direction
/// the offset happens to enable) with per-device duty cycle η:
/// `L = 2αω / η²` seconds — half of the direct symmetric bound
/// (Theorem 5.5). This is the tightest bound for all pairwise deterministic
/// ND protocols.
pub fn oneway_bound(alpha: f64, omega_secs: f64, eta: f64) -> f64 {
    assert!(eta > 0.0 && alpha > 0.0 && omega_secs > 0.0);
    2.0 * alpha * omega_secs / (eta * eta)
}

/// The correlated offset relation of Eq. 34: a beacon sent ζ after a
/// reception window on its own device observes offset `Φ_F,1` on the peer;
/// the peer's corresponding beacon then observes
/// `Φ_E,1 = 2ζ − Φ_F,1 (mod T_C)`.
pub fn correlated_offset(zeta_secs: f64, phi_f: f64, period_secs: f64) -> f64 {
    (2.0 * zeta_secs - phi_f).rem_euclid(period_secs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::symmetric::symmetric_bound;

    #[test]
    fn half_of_symmetric_bound() {
        for eta in [0.01, 0.02, 0.05, 0.1] {
            let one = oneway_bound(1.0, 36e-6, eta);
            let two = symmetric_bound(1.0, 36e-6, eta);
            assert!((two / one - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn known_value() {
        // ω = 36 µs, α = 1, η = 1 % → L = 2·36e-6/1e-4 = 0.72 s
        assert!((oneway_bound(1.0, 36e-6, 0.01) - 0.72).abs() < 1e-9);
    }

    #[test]
    fn correlated_offsets_are_an_involution() {
        // applying Eq. 34 twice returns the original offset
        let (zeta, period) = (0.3e-3, 2.0e-3);
        for phi in [0.0, 0.1e-3, 0.9e-3, 1.7e-3] {
            let phi_e = correlated_offset(zeta, phi, period);
            let back = correlated_offset(zeta, phi_e, period);
            assert!((back - phi).abs() < 1e-15, "phi {phi}");
        }
    }

    #[test]
    fn correlated_offset_wraps() {
        let phi_e = correlated_offset(0.1e-3, 1.9e-3, 2.0e-3);
        // 2·0.1 − 1.9 = −1.7 → +period = 0.3 ms
        assert!((phi_e - 0.3e-3).abs() < 1e-15);
    }
}
