//! The fundamental bounds of the paper (Sections 5–6, Appendices A–C).
//!
//! Every bound is an exact implementation of a numbered theorem or equation,
//! documented with its source. All latencies are in **seconds** (`f64`):
//! the bounds are continuous mathematics; converting to the integer tick
//! grid is the job of the schedule constructors in `nd-protocols`.
//!
//! Overview (one module per group of results):
//!
//! | Module | Results |
//! |---|---|
//! | [`beaconing`] | Theorems 4.3, 5.1, 5.3, 5.4 — unidirectional beaconing |
//! | [`symmetric`] | Theorem 5.5 — symmetric bidirectional ND |
//! | [`constrained`] | Theorem 5.6 — channel-utilization-constrained ND |
//! | [`asymmetric`] | Theorem 5.7 — asymmetric bidirectional ND |
//! | [`oneway`] | Theorem C.1 — mutual-exclusive one-way ND |
//! | [`slotted`] | Section 6 — slotted-protocol bounds, Table 1 |
//! | [`collisions`] | Eq. 12 — ALOHA collision probability, Figure 7 |
//! | [`redundancy`] | Appendix B — redundant coverage, Eqs. 32–33 |
//! | [`overheads`] | Appendix A — non-ideal radios, short windows, self-blocking |

pub mod asymmetric;
pub mod beaconing;
pub mod collisions;
pub mod constrained;
pub mod oneway;
pub mod overheads;
pub mod redundancy;
pub mod slotted;
pub mod symmetric;

pub use asymmetric::{asymmetric_bound, optimal_asymmetric_splits};
pub use beaconing::{coverage_bound, optimal_reception_period, unidirectional_bound};
pub use collisions::{collision_probability, kink_duty_cycle, max_utilization_for};
pub use constrained::constrained_bound;
pub use oneway::oneway_bound;
pub use redundancy::{optimal_redundancy, CollisionExponent, RedundancyPlan};
pub use symmetric::{optimal_beta, symmetric_bound};
