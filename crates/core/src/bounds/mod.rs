//! The fundamental bounds of the paper (Sections 5–6, Appendices A–C).
//!
//! Every bound is an exact implementation of a numbered theorem or equation,
//! documented with its source. All latencies are in **seconds** (`f64`):
//! the bounds are continuous mathematics; converting to the integer tick
//! grid is the job of the schedule constructors in `nd-protocols`.
//!
//! Overview (one module per group of results):
//!
//! | Module | Results |
//! |---|---|
//! | [`beaconing`] | Theorems 4.3, 5.1, 5.3, 5.4 — unidirectional beaconing |
//! | [`symmetric`] | Theorem 5.5 — symmetric bidirectional ND |
//! | [`constrained`] | Theorem 5.6 — channel-utilization-constrained ND |
//! | [`asymmetric`] | Theorem 5.7 — asymmetric bidirectional ND |
//! | [`oneway`] | Theorem C.1 — mutual-exclusive one-way ND |
//! | [`slotted`] | Section 6 — slotted-protocol bounds, Table 1 |
//! | [`collisions`] | Eq. 12 — ALOHA collision probability, Figure 7 |
//! | [`redundancy`] | Appendix B — redundant coverage, Eqs. 32–33 |
//! | [`overheads`] | Appendix A — non-ideal radios, short windows, self-blocking |

pub mod asymmetric;
pub mod beaconing;
pub mod collisions;
pub mod constrained;
pub mod oneway;
pub mod overheads;
pub mod redundancy;
pub mod slotted;
pub mod symmetric;

use crate::error::NdError;

pub use asymmetric::{asymmetric_bound, optimal_asymmetric_splits};
pub use beaconing::{coverage_bound, optimal_reception_period, unidirectional_bound};
pub use collisions::{collision_probability, kink_duty_cycle, max_utilization_for};
pub use constrained::constrained_bound;
pub use oneway::oneway_bound;
pub use redundancy::{optimal_redundancy, CollisionExponent, RedundancyPlan};
pub use symmetric::{optimal_beta, symmetric_bound};

/// The discovery-completion metric a bound refers to (mirrors the sweep
/// grammar's `metric` values; see [`BoundMetric::from_name`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoundMetric {
    /// One fixed direction completes (F discovers E).
    OneWay,
    /// Both directions complete (Theorem 5.5 metric).
    TwoWay,
    /// Either direction completes (Appendix C metric).
    EitherWay,
}

impl BoundMetric {
    /// Parse the sweep-grammar spelling (`one-way` | `two-way` |
    /// `either-way`).
    pub fn from_name(name: &str) -> Option<BoundMetric> {
        match name {
            "one-way" => Some(BoundMetric::OneWay),
            "two-way" => Some(BoundMetric::TwoWay),
            "either-way" => Some(BoundMetric::EitherWay),
            _ => None,
        }
    }
}

/// The paper's closed-form optimal worst-case latency (seconds) for
/// *symmetric* protocols in which each device spends a total duty cycle η,
/// at the given metric — the reference curve Pareto fronts are measured
/// against (`nd-opt`).
///
/// * two-way: Theorem 5.5, `L = 4αω/η²`;
/// * one-way: the same value — with a joint per-device budget η the
///   optimal split β = η/2α, γ = η/2 maximizes β·γ, and Eq. 10 gives
///   `L = ω/(βγ) = 4αω/η²` (a symmetric device pair cannot do better in
///   one direction than in both: the limiting resource is the β·γ
///   product);
/// * either-way: Theorem C.1, `L = 2αω/η²` (correlated quadruples halve
///   the covering work).
///
/// Errors on non-positive or non-finite parameters instead of panicking,
/// so sweep/optimizer rows degrade gracefully.
pub fn optimal_discovery_bound(
    metric: BoundMetric,
    alpha: f64,
    omega_secs: f64,
    eta: f64,
) -> Result<f64, NdError> {
    for (name, v) in [("alpha", alpha), ("omega", omega_secs), ("eta", eta)] {
        if !(v.is_finite() && v > 0.0) {
            return Err(NdError::InvalidSchedule(format!(
                "optimal_discovery_bound: {name} = {v} must be positive and finite"
            )));
        }
    }
    Ok(match metric {
        BoundMetric::OneWay | BoundMetric::TwoWay => symmetric_bound(alpha, omega_secs, eta),
        BoundMetric::EitherWay => oneway_bound(alpha, omega_secs, eta),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_helper_matches_the_underlying_theorems() {
        let b = |m| optimal_discovery_bound(m, 1.0, 36e-6, 0.05).unwrap();
        assert_eq!(b(BoundMetric::TwoWay), symmetric_bound(1.0, 36e-6, 0.05));
        assert_eq!(b(BoundMetric::OneWay), symmetric_bound(1.0, 36e-6, 0.05));
        assert_eq!(b(BoundMetric::EitherWay), oneway_bound(1.0, 36e-6, 0.05));
        assert!((b(BoundMetric::TwoWay) - 0.0576).abs() < 1e-9);
    }

    #[test]
    fn bound_helper_rejects_bad_parameters() {
        for (alpha, omega, eta) in [
            (0.0, 36e-6, 0.05),
            (1.0, -1.0, 0.05),
            (1.0, 36e-6, 0.0),
            (1.0, f64::NAN, 0.05),
        ] {
            assert!(optimal_discovery_bound(BoundMetric::TwoWay, alpha, omega, eta).is_err());
        }
    }

    #[test]
    fn metric_names_roundtrip() {
        for (name, m) in [
            ("one-way", BoundMetric::OneWay),
            ("two-way", BoundMetric::TwoWay),
            ("either-way", BoundMetric::EitherWay),
        ] {
            assert_eq!(BoundMetric::from_name(name), Some(m));
        }
        assert_eq!(BoundMetric::from_name("sideways"), None);
    }
}
