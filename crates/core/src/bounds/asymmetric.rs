//! The asymmetric bidirectional bound (Theorem 5.7 of the paper) and the
//! Figure 6 evaluation helpers.

use crate::params::DutyCycle;

/// Theorem 5.7 (Bound for Asymmetric ND), Eq. 14: for two devices with
/// duty cycles η_E and η_F (each aware of the other's configuration), no
/// protocol guarantees two-way discovery faster than
/// `L = 4αω / (η_E · η_F)` seconds.
pub fn asymmetric_bound(alpha: f64, omega_secs: f64, eta_e: f64, eta_f: f64) -> f64 {
    assert!(eta_e > 0.0 && eta_f > 0.0 && alpha > 0.0 && omega_secs > 0.0);
    4.0 * alpha * omega_secs / (eta_e * eta_f)
}

/// The per-device optimal splits from the proof of Theorem 5.7:
/// β_X = η_X/(2α), γ_X = η_X/2 on both devices (the balanced-latency
/// condition L_E = L_F then holds automatically).
pub fn optimal_asymmetric_splits(eta_e: f64, eta_f: f64, alpha: f64) -> (DutyCycle, DutyCycle) {
    (
        DutyCycle::optimal_split(eta_e, alpha),
        DutyCycle::optimal_split(eta_f, alpha),
    )
}

/// Figure 6 evaluation: the product `L · (η_E + η_F)` for a joint budget
/// `sum = η_E + η_F` split with ratio `ratio = η_E/η_F ≥ 1`.
///
/// Exact evaluation of Theorem 5.7 gives
/// `L·(η_E+η_F) = 4αω · (1+r)² / (r · sum)`; the ratio-dependent factor
/// `(1+r)²/(4r)` is 1 for symmetric operation and grows slowly (1.125 at
/// r = 2, 1.8 at r = 5), which is why the paper's Figure 6 sees no visible
/// cost for moderate asymmetry.
pub fn product_vs_joint_budget(alpha: f64, omega_secs: f64, sum: f64, ratio: f64) -> f64 {
    assert!(ratio >= 1.0, "express the ratio as η_E/η_F ≥ 1");
    let eta_f = sum / (1.0 + ratio);
    let eta_e = sum - eta_f;
    asymmetric_bound(alpha, omega_secs, eta_e, eta_f) * sum
}

/// The asymmetry penalty factor `(1+r)²/(4r)`: the exact multiplicative
/// cost of running a duty-cycle ratio `r` instead of symmetric operation at
/// the same joint budget.
pub fn asymmetry_penalty(ratio: f64) -> f64 {
    assert!(ratio >= 1.0);
    (1.0 + ratio).powi(2) / (4.0 * ratio)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::beaconing::unidirectional_bound;
    use crate::bounds::symmetric::symmetric_bound;

    const OMEGA: f64 = 36e-6;

    #[test]
    fn reduces_to_symmetric_when_equal() {
        let l_asym = asymmetric_bound(1.0, OMEGA, 0.05, 0.05);
        let l_sym = symmetric_bound(1.0, OMEGA, 0.05);
        assert!((l_asym - l_sym).abs() < 1e-12);
    }

    #[test]
    fn splits_balance_the_two_directions() {
        let (eta_e, eta_f, alpha) = (0.08, 0.02, 1.0);
        let (dc_e, dc_f) = optimal_asymmetric_splits(eta_e, eta_f, alpha);
        // L_F = ω/(γ_F β_E), L_E = ω/(γ_E β_F) — Eq. 15
        let l_f = unidirectional_bound(OMEGA, dc_e.beta, dc_f.gamma);
        let l_e = unidirectional_bound(OMEGA, dc_f.beta, dc_e.gamma);
        assert!((l_f - l_e).abs() < 1e-9, "optimal protocols have L_E = L_F");
        let bound = asymmetric_bound(alpha, OMEGA, eta_e, eta_f);
        assert!((l_f - bound).abs() < 1e-9);
    }

    #[test]
    fn splits_are_jointly_optimal() {
        // any other balanced split (β_E = c·η_E, β_F = c·η_F, cf. proof)
        // yields a larger max(L_E, L_F)
        let (eta_e, eta_f, alpha) = (0.06, 0.03, 1.0);
        let best = asymmetric_bound(alpha, OMEGA, eta_e, eta_f);
        for c in [0.1, 0.3, 0.7, 0.9] {
            let beta_e = c * eta_e / alpha;
            let beta_f = c * eta_f / alpha;
            let gamma_e = eta_e - alpha * beta_e;
            let gamma_f = eta_f - alpha * beta_f;
            let l = unidirectional_bound(OMEGA, beta_e, gamma_f)
                .max(unidirectional_bound(OMEGA, beta_f, gamma_e));
            if (c - 0.5).abs() < 1e-9 {
                assert!((l - best).abs() < 1e-9);
            } else {
                assert!(l > best);
            }
        }
    }

    #[test]
    fn figure6_product_depends_mostly_on_sum() {
        // symmetric: product = 16αω/sum
        let sum = 0.1;
        let p1 = product_vs_joint_budget(1.0, OMEGA, sum, 1.0);
        assert!((p1 - 16.0 * OMEGA / sum).abs() < 1e-12);
        // ratio 2 costs only 12.5 % more — visually indistinguishable on a
        // log plot (the paper's "no cost for asymmetry" claim)
        let p2 = product_vs_joint_budget(1.0, OMEGA, sum, 2.0);
        assert!((p2 / p1 - 1.125).abs() < 1e-9);
        // the product scales as 1/sum for every ratio
        for r in [1.0, 2.0, 5.0, 10.0] {
            let a = product_vs_joint_budget(1.0, OMEGA, 0.05, r);
            let b = product_vs_joint_budget(1.0, OMEGA, 0.10, r);
            assert!((a / b - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn penalty_factor_values() {
        assert!((asymmetry_penalty(1.0) - 1.0).abs() < 1e-12);
        assert!((asymmetry_penalty(2.0) - 1.125).abs() < 1e-12);
        assert!((asymmetry_penalty(5.0) - 1.8).abs() < 1e-12);
        assert!((asymmetry_penalty(10.0) - 3.025).abs() < 1e-12);
    }
}
