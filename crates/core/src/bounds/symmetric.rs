//! The symmetric bidirectional bound (Theorem 5.5 of the paper).

/// The latency-optimal transmission duty cycle for a total budget η:
/// β = η / (2α) (from the proof of Theorem 5.5).
pub fn optimal_beta(eta: f64, alpha: f64) -> f64 {
    assert!(eta > 0.0 && alpha > 0.0);
    eta / (2.0 * alpha)
}

/// Theorem 5.5 (Symmetric Bound for Bi-Directional ND Protocols), Eq. 11:
/// for a per-device duty cycle η, no bidirectional ND protocol can
/// guarantee a worst-case latency below
/// `L = 4αω / η²` seconds.
pub fn symmetric_bound(alpha: f64, omega_secs: f64, eta: f64) -> f64 {
    assert!(eta > 0.0 && alpha > 0.0 && omega_secs > 0.0);
    4.0 * alpha * omega_secs / (eta * eta)
}

/// The same bound with the Appendix A.4 correction that accounts for the
/// airtime of the last, successfully received beacon: `L = 4αω/η² + ω`.
pub fn symmetric_bound_with_last_beacon(alpha: f64, omega_secs: f64, eta: f64) -> f64 {
    symmetric_bound(alpha, omega_secs, eta) + omega_secs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::beaconing::unidirectional_bound;

    #[test]
    fn optimal_split_recovers_bound() {
        // inserting β = η/2α, γ = η/2 into Eq. 10 gives Eq. 11
        let (eta, alpha, omega) = (0.05, 1.0, 36e-6);
        let beta = optimal_beta(eta, alpha);
        let gamma = eta - alpha * beta;
        let via_eq10 = unidirectional_bound(omega, beta, gamma);
        let via_thm55 = symmetric_bound(alpha, omega, eta);
        assert!((via_eq10 - via_thm55).abs() < 1e-9);
    }

    #[test]
    fn beta_is_a_minimum() {
        // perturbing the split in either direction can only increase L
        let (eta, alpha, omega) = (0.05, 1.3, 36e-6);
        let best = symmetric_bound(alpha, omega, eta);
        for d in [-0.2, -0.1, 0.1, 0.2] {
            let beta = optimal_beta(eta, alpha) * (1.0 + d);
            let gamma = eta - alpha * beta;
            let l = unidirectional_bound(omega, beta, gamma);
            assert!(l > best, "perturbation {d} should not beat the bound");
        }
    }

    #[test]
    fn known_values() {
        // ω = 36 µs, α = 1, η = 5 % → L = 4·36e-6/0.0025 = 57.6 ms
        assert!((symmetric_bound(1.0, 36e-6, 0.05) - 0.0576).abs() < 1e-9);
        // η = 1 % → 1.44 s (the "practical" regime of the paper)
        assert!((symmetric_bound(1.0, 36e-6, 0.01) - 1.44).abs() < 1e-9);
    }

    #[test]
    fn scales_quadratically_in_eta_linearly_in_alpha() {
        let l1 = symmetric_bound(1.0, 36e-6, 0.02);
        assert!((symmetric_bound(1.0, 36e-6, 0.04) - l1 / 4.0).abs() < 1e-12);
        assert!((symmetric_bound(2.0, 36e-6, 0.02) - l1 * 2.0).abs() < 1e-12);
    }

    #[test]
    fn last_beacon_correction_is_additive() {
        let l = symmetric_bound(1.0, 36e-6, 0.05);
        assert!((symmetric_bound_with_last_beacon(1.0, 36e-6, 0.05) - (l + 36e-6)).abs() < 1e-15);
    }
}
