//! Slotted-protocol bounds (Section 6 of the paper).
//!
//! Slotted protocols couple transmission and reception into active *slots*
//! of length `I`: in each active slot a device beacons at the slot
//! boundaries and listens in between. The classic result of Zheng et
//! al. \[17,16\] bounds the number of active slots: guaranteeing an
//! active-slot overlap within `T` slots needs `k ≥ √T` active slots. The
//! paper converts these slot-domain bounds into *time*-domain bounds by
//! deriving the minimum feasible slot length, and into the
//! latency/duty-cycle/channel-utilization metric via Eq. 20.

/// The theoretical minimum slot length (Section 6.1.1): with a hypothetical
/// full-duplex radio a slot can shrink to one packet airtime, `I = ω`.
/// Real radios need `I ≫ ω` (Figure 5), which the `fig5` experiment
/// quantifies.
pub fn min_slot_length_secs(omega_secs: f64) -> f64 {
    omega_secs
}

/// Eq. 17: the duty cycle of a slotted schedule with `k` active slots per
/// period of `t` slots of length `I` (one beacon per active slot):
/// `η = k(I + αω)/(t·I)`.
pub fn eq17_duty_cycle(k: f64, t: f64, slot_secs: f64, alpha: f64, omega_secs: f64) -> f64 {
    k * (slot_secs + alpha * omega_secs) / (t * slot_secs)
}

/// Eq. 18: the time-domain latency bound implied by the k ≥ √T result of
/// \[17,16\] at the theoretical minimum slot length `I = ω`:
/// `L ≥ ω(1 + 2α + α²)/η²`. Equals the fundamental bound 4αω/η² only at
/// α = 1 and exceeds it for every other α.
pub fn slotted_bound_zheng(alpha: f64, omega_secs: f64, eta: f64) -> f64 {
    omega_secs * (1.0 + 2.0 * alpha + alpha * alpha) / (eta * eta)
}

/// Eq. 19: the same conversion for the code-based protocols of \[6,7\]
/// (two packets per active slot, one slightly outside the slot):
/// `L ≥ ω(1/2 + 2α + 2α²)/η²`. Equals the fundamental bound only at
/// α = 1/2.
pub fn slotted_bound_code_based(alpha: f64, omega_secs: f64, eta: f64) -> f64 {
    omega_secs * (0.5 + 2.0 * alpha + 2.0 * alpha * alpha) / (eta * eta)
}

/// Eq. 20: duty-cycle components of a slotted protocol with `k` active
/// slots per `t` slots for `I ≫ ω`: `β = kω/(I·t)`, `γ = k/t`.
pub fn eq20_duty_cycle(k: f64, t: f64, slot_secs: f64, omega_secs: f64) -> (f64, f64) {
    (k * omega_secs / (slot_secs * t), k / t)
}

/// Eq. 21: the latency/duty-cycle/channel-utilization bound for slotted
/// protocols built on k ≥ √T schedules: `L ≥ ω/(ηβ − αβ²)`.
///
/// For β ≤ η/(2α) this coincides with the fundamental Theorem 5.6 bound —
/// slotted protocols *can* be optimal in busy networks; above it they
/// cannot reach the fundamental bound.
pub fn slotted_bound_constrained(alpha: f64, omega_secs: f64, eta: f64, beta: f64) -> f64 {
    let denom = eta * beta - alpha * beta * beta;
    if denom <= 0.0 {
        f64::INFINITY
    } else {
        omega_secs / denom
    }
}

/// Table 1: worst-case latency of **diff-code-based schedules** \[17\] in the
/// (L, η, β) metric: `ω/(ηβ − αβ²)` — the only slotted protocol family
/// reaching the optimum.
pub fn table1_diffcodes(alpha: f64, omega_secs: f64, eta: f64, beta: f64) -> f64 {
    slotted_bound_constrained(alpha, omega_secs, eta, beta)
}

/// Table 1: worst-case latency of **Disco** \[3\]: `8ω/(ηβ − αβ²)`.
pub fn table1_disco(alpha: f64, omega_secs: f64, eta: f64, beta: f64) -> f64 {
    8.0 * slotted_bound_constrained(alpha, omega_secs, eta, beta)
}

/// Table 1: worst-case latency of **Searchlight-Striped** \[5\]:
/// `2ω/(ηβ − αβ²)`.
pub fn table1_searchlight(alpha: f64, omega_secs: f64, eta: f64, beta: f64) -> f64 {
    2.0 * slotted_bound_constrained(alpha, omega_secs, eta, beta)
}

/// Table 1: worst-case latency of **U-Connect** \[4\]:
/// `(3ω + √(ω²(8η − 8αβ + 9)))² / (8ωβη − 8ωαβ²)`.
pub fn table1_uconnect(alpha: f64, omega_secs: f64, eta: f64, beta: f64) -> f64 {
    let disc = omega_secs * omega_secs * (8.0 * eta - 8.0 * alpha * beta + 9.0);
    let num = (3.0 * omega_secs + disc.sqrt()).powi(2);
    let den = 8.0 * omega_secs * beta * eta - 8.0 * omega_secs * alpha * beta * beta;
    if den <= 0.0 {
        f64::INFINITY
    } else {
        num / den
    }
}

// ---------------------------------------------------------------------------
// Classic slot-domain worst cases (used to validate our protocol
// implementations in nd-protocols against the literature).
// ---------------------------------------------------------------------------

/// Disco \[3\]: two nodes with prime pairs `(p1, p2)` and `(p3, p4)` where at
/// least one cross pair is distinct discover each other within
/// `min` of the products of distinct cross primes (slots). For the common
/// symmetric configuration (both nodes run the same pair) this is `p1·p2`.
pub fn disco_worst_slots(p1: u64, p2: u64) -> u64 {
    assert!(p1 != p2, "Disco needs two distinct primes");
    p1 * p2
}

/// U-Connect \[4\] with prime `p`: worst case `p²` slots.
pub fn uconnect_worst_slots(p: u64) -> u64 {
    p * p
}

/// Searchlight \[5\] with period `t` slots: the probe sweeps ⌈t/2⌉ positions,
/// so the worst case is `t·⌈t/2⌉` slots.
pub fn searchlight_worst_slots(t: u64) -> u64 {
    t * t.div_ceil(2)
}

/// Difference-set schedule on `v` slots: worst case `v` slots (a rotation
/// of the set always intersects itself within one period).
pub fn diffcode_worst_slots(v: u64) -> u64 {
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::symmetric::symmetric_bound;

    const OMEGA: f64 = 36e-6;

    #[test]
    fn eq18_matches_fundamental_only_at_alpha_1() {
        let eta = 0.02;
        let at1 = slotted_bound_zheng(1.0, OMEGA, eta);
        assert!((at1 - symmetric_bound(1.0, OMEGA, eta)).abs() < 1e-12);
        for alpha in [0.25, 0.5, 2.0, 4.0] {
            assert!(
                slotted_bound_zheng(alpha, OMEGA, eta) > symmetric_bound(alpha, OMEGA, eta),
                "alpha {alpha}"
            );
        }
    }

    #[test]
    fn eq19_matches_fundamental_only_at_alpha_half() {
        let eta = 0.02;
        let at_half = slotted_bound_code_based(0.5, OMEGA, eta);
        assert!((at_half - symmetric_bound(0.5, OMEGA, eta)).abs() < 1e-12);
        for alpha in [0.25, 1.0, 2.0] {
            assert!(
                slotted_bound_code_based(alpha, OMEGA, eta) > symmetric_bound(alpha, OMEGA, eta),
                "alpha {alpha}"
            );
        }
    }

    #[test]
    fn eq19_lower_in_slots_but_not_in_time() {
        // the [6,7] bound is lower in slot terms; in time it is ≥ [17,16]'s
        // only for α ≥ 1/2... verify the paper's statement at α = 1:
        // Eq.18 gives 4ω/η², Eq.19 gives 4.5ω/η².
        let eta = 0.02;
        assert!(slotted_bound_code_based(1.0, OMEGA, eta) > slotted_bound_zheng(1.0, OMEGA, eta));
    }

    #[test]
    fn eq17_and_eq20_consistency() {
        // for I ≫ ω, Eq. 17's η converges to Eq. 20's γ + αβ
        let (k, t, slot) = (10.0, 100.0, 1.0);
        let eta17 = eq17_duty_cycle(k, t, slot, 1.0, OMEGA);
        let (beta, gamma) = eq20_duty_cycle(k, t, slot, OMEGA);
        assert!((eta17 - (gamma + beta)).abs() < 1e-9);
    }

    #[test]
    fn table1_ordering_matches_paper() {
        // at any feasible (η, β): diffcodes < searchlight < disco, and
        // diffcodes equals the constrained fundamental bound
        let (eta, beta) = (0.05, 0.01);
        let dc = table1_diffcodes(1.0, OMEGA, eta, beta);
        let sl = table1_searchlight(1.0, OMEGA, eta, beta);
        let di = table1_disco(1.0, OMEGA, eta, beta);
        let uc = table1_uconnect(1.0, OMEGA, eta, beta);
        assert!((sl / dc - 2.0).abs() < 1e-9);
        assert!((di / dc - 8.0).abs() < 1e-9);
        assert!(uc > dc);
        assert_eq!(dc, slotted_bound_constrained(1.0, OMEGA, eta, beta));
    }

    #[test]
    fn constrained_bound_matches_theorem_5_6_below_kink() {
        use crate::bounds::constrained::constrained_bound;
        // β = β_m < η/2α: slotted bound equals the fundamental bound
        let (eta, beta) = (0.05, 0.02);
        assert!(
            (slotted_bound_constrained(1.0, OMEGA, eta, beta)
                - constrained_bound(1.0, OMEGA, eta, beta))
            .abs()
                < 1e-12
        );
        // above the kink slotted protocols cannot reach the fundamental bound
        let beta_hi = 0.04; // > η/2α = 0.025
        assert!(
            slotted_bound_constrained(1.0, OMEGA, eta, beta_hi)
                > constrained_bound(1.0, OMEGA, eta, beta_hi)
        );
    }

    #[test]
    fn uconnect_formula_positive_and_worse_than_optimal() {
        for (eta, beta) in [(0.02, 0.005), (0.05, 0.01), (0.1, 0.02)] {
            let uc = table1_uconnect(1.0, OMEGA, eta, beta);
            let dc = table1_diffcodes(1.0, OMEGA, eta, beta);
            assert!(uc.is_finite() && uc > dc, "eta {eta} beta {beta}");
        }
    }

    #[test]
    fn slot_domain_worst_cases() {
        assert_eq!(disco_worst_slots(37, 43), 1591);
        assert_eq!(uconnect_worst_slots(31), 961);
        assert_eq!(searchlight_worst_slots(20), 200);
        assert_eq!(searchlight_worst_slots(21), 231);
        assert_eq!(diffcode_worst_slots(73), 73);
    }

    #[test]
    fn infeasible_beta_is_infinite() {
        assert!(slotted_bound_constrained(1.0, OMEGA, 0.01, 0.01).is_infinite());
        assert!(table1_uconnect(1.0, OMEGA, 0.01, 0.02).is_infinite());
    }

    #[test]
    fn min_slot_length_is_omega() {
        assert_eq!(min_slot_length_secs(36e-6), 36e-6);
    }
}
