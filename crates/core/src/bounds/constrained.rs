//! The channel-utilization-constrained bound (Theorem 5.6 of the paper).

use crate::bounds::symmetric::symmetric_bound;

/// Theorem 5.6 (Bound for Symmetric ND with Constrained Channel
/// Utilization), Eq. 13: with the channel utilization capped at `β_m`,
///
/// ```text
/// L = 4αω/η²                 if η ≤ 2αβ_m   (cap not binding)
/// L = ω/(η·β_m − α·β_m²)     if η > 2αβ_m   (cap binding)
/// ```
///
/// Returns `f64::INFINITY` when the cap leaves no reception budget
/// (η ≤ α·β_m would force γ ≤ 0 — discovery is impossible).
pub fn constrained_bound(alpha: f64, omega_secs: f64, eta: f64, beta_m: f64) -> f64 {
    assert!(eta > 0.0 && alpha > 0.0 && omega_secs > 0.0 && beta_m > 0.0);
    if eta <= 2.0 * alpha * beta_m {
        symmetric_bound(alpha, omega_secs, eta)
    } else {
        let denom = eta * beta_m - alpha * beta_m * beta_m;
        if denom <= 0.0 {
            f64::INFINITY
        } else {
            omega_secs / denom
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OMEGA: f64 = 36e-6;

    #[test]
    fn unconstrained_region_equals_symmetric_bound() {
        // η = 2 %, cap β_m = 5 % ≥ η/(2α) = 1 % → not binding
        let l = constrained_bound(1.0, OMEGA, 0.02, 0.05);
        assert_eq!(l, symmetric_bound(1.0, OMEGA, 0.02));
    }

    #[test]
    fn binding_cap_increases_latency() {
        let eta = 0.05;
        let unconstrained = symmetric_bound(1.0, OMEGA, eta);
        // cap below the optimum η/2α = 2.5 %
        let l = constrained_bound(1.0, OMEGA, eta, 0.01);
        assert!(l > unconstrained);
        // Eq. 13 second branch explicitly
        let expected = OMEGA / (eta * 0.01 - 1.0 * 0.01 * 0.01);
        assert!((l - expected).abs() < 1e-12);
    }

    #[test]
    fn continuous_at_the_kink() {
        // at η = 2αβ_m both branches agree
        let (alpha, beta_m) = (1.5, 0.02);
        let eta = 2.0 * alpha * beta_m;
        let lhs = symmetric_bound(alpha, OMEGA, eta);
        let rhs = OMEGA / (eta * beta_m - alpha * beta_m * beta_m);
        assert!((lhs - rhs).abs() < 1e-9);
        assert!((constrained_bound(alpha, OMEGA, eta, beta_m) - lhs).abs() < 1e-12);
    }

    #[test]
    fn always_feasible() {
        // In the binding branch η > 2αβ_m, so the denominator
        // β_m(η − αβ_m) > αβ_m² > 0: Theorem 5.6 is finite everywhere.
        // (A cap β_m ≥ η/2α simply falls back to the unconstrained branch.)
        for (eta, beta_m) in [(0.01, 0.001), (0.05, 0.01), (0.5, 0.01), (0.01, 0.01)] {
            let l = constrained_bound(1.0, OMEGA, eta, beta_m);
            assert!(l.is_finite() && l > 0.0, "eta {eta} beta_m {beta_m}");
        }
    }

    #[test]
    fn monotone_nonincreasing_in_cap() {
        let eta = 0.05;
        let mut prev = f64::INFINITY;
        for beta_m in [0.005, 0.01, 0.02, 0.025, 0.05] {
            let l = constrained_bound(1.0, OMEGA, eta, beta_m);
            assert!(l <= prev + 1e-15, "cap {beta_m} should not increase L");
            prev = l;
        }
        // caps above η/2α change nothing
        assert_eq!(
            constrained_bound(1.0, OMEGA, eta, 0.025),
            constrained_bound(1.0, OMEGA, eta, 0.9)
        );
    }
}
