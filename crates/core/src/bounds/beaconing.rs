//! Bounds for unidirectional beaconing (Section 5.1 of the paper).
//!
//! Device E runs only a beacon sequence with transmission duty-cycle β,
//! device F runs only a reception-window sequence with reception duty-cycle
//! γ; we bound the worst-case time until F discovers E.

use crate::time::Tick;

/// Theorem 5.1 (Coverage Bound), Eq. 6: the lowest worst-case latency of a
/// tuple `(B∞, C∞)` in seconds,
/// `L = ⌈T_C / Σd⌉ · ω / β`.
///
/// This is the pre-optimization form that still contains the reception
/// sequence's shape; optimizing the shape via Theorem 5.3 yields
/// [`unidirectional_bound`].
pub fn coverage_bound(period: Tick, sum_d: Tick, omega_secs: f64, beta: f64) -> f64 {
    assert!(beta > 0.0, "beta must be positive");
    let m = period.div_ceil(sum_d) as f64;
    m * omega_secs / beta
}

/// Theorem 5.3 (Overlap Theorem), Eq. 7: the reception periods that admit
/// optimal latency/duty-cycle relations are exactly the integer multiples
/// `T_C = k · Σd`. Returns that period for a given `k`.
pub fn optimal_reception_period(sum_d: Tick, k: u64) -> Tick {
    assert!(k >= 1, "k must be at least 1");
    sum_d * k
}

/// Theorem 5.4 (Fundamental Bound for Unidirectional Beaconing), Eq. 9:
/// `L = ω / (β_E · γ_F)` seconds.
///
/// No pair of sequences with these duty cycles can guarantee a lower
/// worst-case latency for F discovering E.
pub fn unidirectional_bound(omega_secs: f64, beta_e: f64, gamma_f: f64) -> f64 {
    assert!(
        beta_e > 0.0 && gamma_f > 0.0,
        "duty cycles must be positive"
    );
    omega_secs / (beta_e * gamma_f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_bound_eq6() {
        // T_C = 100 µs, Σd = 20 µs → M = 5; ω = 36 µs, β = 0.01
        let l = coverage_bound(Tick::from_micros(100), Tick::from_micros(20), 36e-6, 0.01);
        assert!((l - 5.0 * 36e-6 / 0.01).abs() < 1e-12);
    }

    #[test]
    fn coverage_bound_ceiling_kicks_in() {
        // Σd that doesn't divide T_C wastes latency (motivates Thm 5.3)
        let exact = coverage_bound(Tick(100), Tick(20), 36e-6, 0.01);
        let ragged = coverage_bound(Tick(101), Tick(20), 36e-6, 0.01);
        assert!(ragged > exact);
        assert!((ragged / exact - 6.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_theorem_periods() {
        assert_eq!(optimal_reception_period(Tick(20), 5), Tick(100));
        assert_eq!(optimal_reception_period(Tick(7), 1), Tick(7));
    }

    #[test]
    fn unidirectional_eq9_matches_coverage_bound_at_optimum() {
        // With T_C = k·Σd the two forms coincide (Eq. 10):
        // ⌈T_C/Σd⌉·ω/β = (T_C/Σd)·ω/β = ω/(β·γ) since γ = Σd/T_C.
        let sum_d = Tick::from_micros(20);
        let period = optimal_reception_period(sum_d, 5);
        let gamma = sum_d.as_nanos() as f64 / period.as_nanos() as f64;
        let via_coverage = coverage_bound(period, sum_d, 36e-6, 0.01);
        let via_eq9 = unidirectional_bound(36e-6, 0.01, gamma);
        assert!((via_coverage - via_eq9).abs() < 1e-9);
    }

    #[test]
    fn unidirectional_scales_inversely_in_both_duty_cycles() {
        let base = unidirectional_bound(36e-6, 0.01, 0.02);
        assert!((unidirectional_bound(36e-6, 0.02, 0.02) - base / 2.0).abs() < 1e-9);
        assert!((unidirectional_bound(36e-6, 0.01, 0.04) - base / 2.0).abs() < 1e-9);
    }

    #[test]
    fn paper_scale_sanity() {
        // ω = 36 µs, β = γ = 2.5 % → L = 57.6 ms; well inside the paper's
        // practical range [0.5 s, 30 s] for smaller duty cycles.
        let l = unidirectional_bound(36e-6, 0.025, 0.025);
        assert!((l - 0.0576).abs() < 1e-9);
    }
}
