//! Packet-collision model (Eq. 12 of the paper) and the Figure 7
//! collision-constrained evaluation.
//!
//! When `S` senders each occupy the channel for a fraction β of time, a
//! beacon transmitted at a random instant collides with probability
//! `P_c = 1 − e^{−2(S−1)β}` (slotless ALOHA \[22\]: the vulnerable period is
//! two packet airtimes). Capping the tolerable `P_c` caps β, which via
//! Theorem 5.6 inflates the achievable worst-case latency.

use crate::bounds::constrained::constrained_bound;

/// Eq. 12: collision probability of a beacon among `s` senders each with
/// channel utilization `beta`.
pub fn collision_probability(s: u32, beta: f64) -> f64 {
    assert!(s >= 1, "need at least one sender");
    assert!((0.0..=1.0).contains(&beta));
    1.0 - (-2.0 * (s as f64 - 1.0) * beta).exp()
}

/// Inverse of Eq. 12: the largest per-device channel utilization β_m that
/// keeps the collision probability at or below `pc` among `s` senders.
/// Returns `f64::INFINITY` for `s = 1` (no one to collide with).
pub fn max_utilization_for(pc: f64, s: u32) -> f64 {
    assert!((0.0..1.0).contains(&pc), "pc must be in [0,1)");
    assert!(s >= 1);
    if s == 1 {
        return f64::INFINITY;
    }
    -(1.0 - pc).ln() / (2.0 * (s as f64 - 1.0))
}

/// The duty cycle at which the collision cap starts to bind (the circled
/// points of Figure 7): η* = 2α·β_m.
pub fn kink_duty_cycle(alpha: f64, pc: f64, s: u32) -> f64 {
    2.0 * alpha * max_utilization_for(pc, s)
}

/// Figure 7 evaluation: the lowest guaranteeable worst-case latency at duty
/// cycle η when the collision probability among `s` senders must stay below
/// `pc`. Combines Eq. 12 with Theorem 5.6.
pub fn collision_constrained_bound(alpha: f64, omega_secs: f64, eta: f64, pc: f64, s: u32) -> f64 {
    let beta_m = max_utilization_for(pc, s);
    if beta_m.is_infinite() {
        crate::bounds::symmetric::symmetric_bound(alpha, omega_secs, eta)
    } else {
        constrained_bound(alpha, omega_secs, eta, beta_m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::symmetric::symmetric_bound;

    const OMEGA: f64 = 36e-6;

    #[test]
    fn eq12_known_values() {
        // single sender never collides
        assert_eq!(collision_probability(1, 0.5), 0.0);
        // zero utilization never collides
        assert_eq!(collision_probability(10, 0.0), 0.0);
        // two senders, β = 0.1: 1 − e^{−0.2}
        let p = collision_probability(2, 0.1);
        assert!((p - (1.0 - (-0.2f64).exp())).abs() < 1e-12);
    }

    #[test]
    fn inverse_roundtrips() {
        for s in [2u32, 3, 10, 100] {
            for pc in [0.001, 0.01, 0.1] {
                let beta = max_utilization_for(pc, s);
                let p = collision_probability(s, beta);
                assert!((p - pc).abs() < 1e-12, "s {s} pc {pc}");
            }
        }
    }

    #[test]
    fn more_senders_need_lower_utilization() {
        let pc = 0.01;
        let mut prev = f64::INFINITY;
        for s in [2u32, 5, 10, 100, 1000] {
            let b = max_utilization_for(pc, s);
            assert!(b < prev);
            prev = b;
        }
    }

    #[test]
    fn figure7_shape_small_eta_unaffected() {
        // below the kink the constraint changes nothing
        let (pc, s) = (0.01, 10);
        let kink = kink_duty_cycle(1.0, pc, s);
        let eta = kink * 0.5;
        assert_eq!(
            collision_constrained_bound(1.0, OMEGA, eta, pc, s),
            symmetric_bound(1.0, OMEGA, eta)
        );
        // above the kink the bound deteriorates
        let eta_hi = kink * 4.0;
        assert!(
            collision_constrained_bound(1.0, OMEGA, eta_hi, pc, s)
                > symmetric_bound(1.0, OMEGA, eta_hi)
        );
    }

    #[test]
    fn figure7_deterioration_grows_with_s() {
        // at a fixed η above all kinks, more interferers → larger bound
        let (pc, eta) = (0.01, 0.2);
        let mut prev = 0.0;
        for s in [10u32, 100, 1000] {
            let l = collision_constrained_bound(1.0, OMEGA, eta, pc, s);
            assert!(l > prev);
            prev = l;
        }
        // and the deterioration reaches orders of magnitude (paper: "up to
        // two orders of magnitude")
        let unconstrained = symmetric_bound(1.0, OMEGA, eta);
        assert!(prev / unconstrained > 50.0);
    }

    #[test]
    fn single_sender_unconstrained() {
        assert_eq!(
            collision_constrained_bound(1.0, OMEGA, 0.3, 0.01, 1),
            symmetric_bound(1.0, OMEGA, 0.3)
        );
    }
}
