//! Relaxations of the ideal-radio assumptions (Appendix A of the paper).
//!
//! * A.2 — radios with switching overheads (Eqs. 24–27),
//! * A.3 — packets must fit entirely inside a window (Eqs. 28–30),
//! * A.4 — accounting for the airtime of the final, successful beacon,
//! * A.5 — a device's own transmissions blank its reception windows
//!   (Eq. 31).

use crate::time::Tick;

/// Eq. 24: effective transmission duty cycle of a non-ideal radio — each
/// beacon costs `ω + d_oTx` of active time: `β = (ω + d_oTx)/λ̄`.
pub fn beta_with_overhead(omega: Tick, do_tx: Tick, mean_gap: Tick) -> f64 {
    (omega + do_tx).as_nanos() as f64 / mean_gap.as_nanos() as f64
}

/// Eq. 25: effective reception duty cycle of a non-ideal radio — each of
/// the `n_C` windows costs an extra `d_oRx`:
/// `γ = (Σd + n_C·d_oRx)/T_C`.
pub fn gamma_with_overhead(sum_d: Tick, n_windows: u64, do_rx: Tick, period: Tick) -> f64 {
    (sum_d + do_rx * n_windows).as_nanos() as f64 / period.as_nanos() as f64
}

/// Eq. 26: the unidirectional bound for a non-ideal radio with `n_C`
/// reception windows per period:
/// `L = (1/γ)·(1 + n_C·d_oRx/Σd)·(ω + d_oTx)/β` seconds.
///
/// The bound grows with `n_C`, so a single window per period (`n_C = 1`,
/// Eq. 27) is optimal — implemented by passing `n_windows = 1` and
/// `sum_d = d₁`.
pub fn unidirectional_with_overheads(
    omega: Tick,
    do_tx: Tick,
    do_rx: Tick,
    sum_d: Tick,
    n_windows: u64,
    beta: f64,
    gamma: f64,
) -> f64 {
    assert!(beta > 0.0 && gamma > 0.0);
    let window_penalty = 1.0 + (do_rx * n_windows).as_nanos() as f64 / sum_d.as_nanos() as f64;
    (1.0 / gamma) * window_penalty * (omega + do_tx).as_secs_f64() / beta
}

/// Eq. 28: the coverage bound when transmissions starting within the last
/// ω of a window are lost (Appendix A.3): each window contributes only
/// `d_k − ω` of coverage:
/// `L = ⌈T_C / Σ(d_k − ω)⌉ · ω/β`. Returns `f64::INFINITY` if no window is
/// longer than ω.
pub fn coverage_bound_shortened(
    period: Tick,
    window_lengths: &[Tick],
    omega: Tick,
    beta: f64,
) -> f64 {
    assert!(beta > 0.0);
    let effective: Tick = window_lengths
        .iter()
        .map(|&d| d.saturating_sub(omega))
        .sum();
    if effective.is_zero() {
        return f64::INFINITY;
    }
    period.div_ceil(effective) as f64 * omega.as_secs_f64() / beta
}

/// Eq. 29 (single window, `T_C = k(d₁ − ω)`):
/// `L(T_C) = T_C·ω / (T_C·β·γ − β·ω)` seconds.
pub fn shortened_window_bound(period_secs: f64, omega_secs: f64, beta: f64, gamma: f64) -> f64 {
    let denom = period_secs * beta * gamma - beta * omega_secs;
    if denom <= 0.0 {
        f64::INFINITY
    } else {
        period_secs * omega_secs / denom
    }
}

/// Eq. 30: the `T_C → ∞` limit of [`shortened_window_bound`] recovers the
/// ideal bound `ω/(βγ)` — the A.3 relaxation does not change the
/// fundamental bounds.
pub fn shortened_window_limit(omega_secs: f64, beta: f64, gamma: f64) -> f64 {
    omega_secs / (beta * gamma)
}

/// Appendix A.4: accounting for the airtime of the last, successful beacon
/// adds exactly ω to any of the latency bounds.
pub fn with_last_beacon(bound_secs: f64, omega_secs: f64) -> f64 {
    bound_secs + omega_secs
}

/// Eq. 31: the probability that a discovery fails because the device's own
/// transmission blanks the reception window that the peer's beacon would
/// have hit (Appendix A.5, same sequences on both devices):
/// `P_fail = (d_oTxRx + d_oRxTx + d_a) / (M · Σd)`
/// where `d_a` is the blanked airtime (one packet, ω, for an ideal
/// half-duplex radio) and `M` the number of beacons per worst-case period.
pub fn self_blocking_failure_probability(
    do_tx_rx: Tick,
    do_rx_tx: Tick,
    blanked_airtime: Tick,
    m_beacons: u64,
    sum_d: Tick,
) -> f64 {
    assert!(m_beacons >= 1);
    (do_tx_rx + do_rx_tx + blanked_airtime).as_nanos() as f64
        / (m_beacons as f64 * sum_d.as_nanos() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq24_eq25_reduce_to_ideal() {
        let omega = Tick::from_micros(36);
        let gap = Tick::from_millis(3);
        let ideal = omega.as_nanos() as f64 / gap.as_nanos() as f64;
        assert!((beta_with_overhead(omega, Tick::ZERO, gap) - ideal).abs() < 1e-15);
        assert!(beta_with_overhead(omega, Tick::from_micros(100), gap) > ideal);

        let sum_d = Tick::from_millis(1);
        let period = Tick::from_millis(10);
        let ideal_g = 0.1;
        assert!((gamma_with_overhead(sum_d, 4, Tick::ZERO, period) - ideal_g).abs() < 1e-15);
        assert!(gamma_with_overhead(sum_d, 4, Tick::from_micros(130), period) > ideal_g);
    }

    #[test]
    fn eq26_grows_with_window_count() {
        // same Σd and duty cycles, more windows → more switching overhead →
        // larger bound; n_C = 1 is optimal (the paper's conclusion)
        let omega = Tick::from_micros(36);
        let do_rx = Tick::from_micros(130);
        let sum_d = Tick::from_millis(1);
        let (beta, gamma) = (0.01, 0.1);
        let mut prev = 0.0;
        for n in [1u64, 2, 4, 8] {
            let l = unidirectional_with_overheads(
                omega,
                Tick::from_micros(130),
                do_rx,
                sum_d,
                n,
                beta,
                gamma,
            );
            assert!(l > prev, "n_C = {n}");
            prev = l;
        }
    }

    #[test]
    fn eq26_reduces_to_eq9_for_ideal_radio() {
        let omega = Tick::from_micros(36);
        let (beta, gamma) = (0.01, 0.02);
        let l = unidirectional_with_overheads(
            omega,
            Tick::ZERO,
            Tick::ZERO,
            Tick::from_millis(1),
            3,
            beta,
            gamma,
        );
        let ideal =
            crate::bounds::beaconing::unidirectional_bound(omega.as_secs_f64(), beta, gamma);
        assert!((l - ideal).abs() < 1e-12);
    }

    #[test]
    fn eq28_shortening_penalizes_many_windows() {
        let omega = Tick::from_micros(36);
        let period = Tick::from_millis(10);
        let beta = 0.01;
        // 1 ms of listening as a single window vs. ten 100 µs windows
        let single = coverage_bound_shortened(period, &[Tick::from_millis(1)], omega, beta);
        let many = coverage_bound_shortened(period, &[Tick::from_micros(100); 10], omega, beta);
        assert!(many > single);
    }

    #[test]
    fn eq28_infinite_when_windows_too_short() {
        let omega = Tick::from_micros(36);
        let l =
            coverage_bound_shortened(Tick::from_millis(1), &[Tick::from_micros(20)], omega, 0.01);
        assert!(l.is_infinite());
    }

    #[test]
    fn eq29_converges_to_eq30_limit() {
        let (omega, beta, gamma) = (36e-6, 0.01, 0.02);
        let limit = shortened_window_limit(omega, beta, gamma);
        let mut prev = f64::INFINITY;
        for period in [0.01, 0.1, 1.0, 10.0, 100.0] {
            let l = shortened_window_bound(period, omega, beta, gamma);
            assert!(l >= limit);
            assert!(l <= prev, "L decreases with T_C");
            prev = l;
        }
        // at T_C = 100 s we are within 0.1 % of the limit
        assert!((prev / limit - 1.0) < 1e-3);
    }

    #[test]
    fn eq31_failure_probability() {
        // ideal half-duplex radio: only the packet airtime blanks the window
        let p = self_blocking_failure_probability(
            Tick::ZERO,
            Tick::ZERO,
            Tick::from_micros(36),
            10,
            Tick::from_millis(1),
        );
        assert!((p - 36e-6 / (10.0 * 1e-3)).abs() < 1e-12);
        // turnarounds increase it
        let p2 = self_blocking_failure_probability(
            Tick::from_micros(150),
            Tick::from_micros(150),
            Tick::from_micros(36),
            10,
            Tick::from_millis(1),
        );
        assert!(p2 > p);
    }

    #[test]
    fn last_beacon_additive() {
        assert_eq!(with_last_beacon(1.0, 36e-6), 1.000036);
    }
}
