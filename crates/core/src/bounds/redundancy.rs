//! Redundant coverage for collision robustness (Appendix B of the paper).
//!
//! In networks where more than two devices discover each other
//! simultaneously, collisions make the deterministic worst case `L` only
//! probabilistically achievable. Appendix B asks: given a duty cycle η, a
//! tolerated failure rate `P_f` and `S` participating devices, what is the
//! best latency `L′` that is met by a fraction `1 − P_f` of discovery
//! attempts? The optimum covers every offset `Q` times with (ideally)
//! independently-colliding beacons; Eq. 32 relates `P_f` to the
//! per-beacon collision probability and Eq. 33 gives the resulting latency.

use crate::bounds::collisions::collision_probability;

/// Which exponent Eq. 32 uses for the per-beacon collision probability.
///
/// The paper's Eq. 12 uses `2(S−1)β`; the Appendix B text argues for
/// `2(S−2)β` ("the beacons from every pair of devices discovering each
/// other can never collide with themselves"). Reproducing the paper's
/// worked example (β = 2.07 %, P_c = 7.9 % at Q = 3) requires the Eq. 12
/// variant, so that is the default; both are provided.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CollisionExponent {
    /// `P_c = 1 − e^{−2(S−1)β}` (Eq. 12; matches the worked example).
    #[default]
    SMinusOne,
    /// `P_c = 1 − e^{−2(S−2)β}` (Appendix B prose).
    SMinusTwo,
}

impl CollisionExponent {
    /// The effective number of interfering senders.
    pub fn interferers(self, s: u32) -> f64 {
        match self {
            CollisionExponent::SMinusOne => s as f64 - 1.0,
            CollisionExponent::SMinusTwo => s as f64 - 2.0,
        }
    }

    /// Per-beacon collision probability among `s` senders with channel
    /// utilization `beta`.
    pub fn collision_probability(self, s: u32, beta: f64) -> f64 {
        match self {
            CollisionExponent::SMinusOne => collision_probability(s, beta),
            CollisionExponent::SMinusTwo => {
                if s <= 2 {
                    0.0
                } else {
                    1.0 - (-2.0 * (s as f64 - 2.0) * beta).exp()
                }
            }
        }
    }
}

/// Eq. 32 with `q = 0`: the discovery failure rate when every offset is
/// covered `Q` times by independently-colliding beacons:
/// `P_f = P_c^Q`.
pub fn failure_rate(q: u32, s: u32, beta: f64, exponent: CollisionExponent) -> f64 {
    assert!(q >= 1);
    exponent.collision_probability(s, beta).powi(q as i32)
}

/// Eq. 32 in full: a fraction `q_frac` of offsets is covered `Q+1` times,
/// the rest `Q` times:
/// `P_f = (1−q)·P_c^Q + q·P_c^{Q+1}`.
pub fn failure_rate_fractional(
    q: u32,
    q_frac: f64,
    s: u32,
    beta: f64,
    exponent: CollisionExponent,
) -> f64 {
    assert!((0.0..=1.0).contains(&q_frac));
    let pc = exponent.collision_probability(s, beta);
    (1.0 - q_frac) * pc.powi(q as i32) + q_frac * pc.powi(q as i32 + 1)
}

/// Inverse of Eq. 32 at `q = 0`: the channel utilization β at which `Q`-fold
/// redundancy achieves exactly the failure rate `pf` among `s` senders:
/// `β = −ln(1 − pf^{1/Q}) / (2·(S−eff))`.
/// Returns `None` when there are no interferers (any β works).
pub fn beta_for_redundancy(q: u32, pf: f64, s: u32, exponent: CollisionExponent) -> Option<f64> {
    assert!(q >= 1);
    assert!((0.0..1.0).contains(&pf) && pf > 0.0, "pf must be in (0,1)");
    let eff = exponent.interferers(s);
    if eff <= 0.0 {
        return None;
    }
    let pc = pf.powf(1.0 / q as f64);
    Some(-(1.0 - pc).ln() / (2.0 * eff))
}

/// A solved redundancy configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RedundancyPlan {
    /// Redundancy degree: every offset is covered `q` times.
    pub q: u32,
    /// Channel utilization β implied by (q, P_f, S).
    pub beta: f64,
    /// Reception duty cycle γ = η − αβ.
    pub gamma: f64,
    /// Eq. 33: the latency `L′` met with probability 1 − P_f, in seconds:
    /// `L′ = Q·ω/(β·γ)`.
    pub l_prime: f64,
    /// The per-beacon collision probability at this β.
    pub pc: f64,
    /// The deterministic pair worst case ω/(βγ) (no collisions), seconds.
    pub pair_worst_case: f64,
}

/// Eq. 33 for a specific redundancy degree `q`: `L′(q) = q·ω/(β(q)·γ(q))`
/// with β(q) from [`beta_for_redundancy`] and γ = η − αβ. Returns `None`
/// when the required β exceeds the transmit budget (γ ≤ 0) or when there
/// are no interferers.
pub fn plan_for_q(
    q: u32,
    eta: f64,
    alpha: f64,
    omega_secs: f64,
    pf: f64,
    s: u32,
    exponent: CollisionExponent,
) -> Option<RedundancyPlan> {
    let beta = beta_for_redundancy(q, pf, s, exponent)?;
    let gamma = eta - alpha * beta;
    if gamma <= 0.0 || beta <= 0.0 {
        return None;
    }
    Some(RedundancyPlan {
        q,
        beta,
        gamma,
        l_prime: q as f64 * omega_secs / (beta * gamma),
        pc: exponent.collision_probability(s, beta),
        pair_worst_case: omega_secs / (beta * gamma),
    })
}

/// The optimal integer redundancy degree: scans `q = 1..=q_max` and returns
/// the plan minimizing `L′` (Appendix B's implicit optimization). Returns
/// `None` if no degree is feasible.
pub fn optimal_redundancy(
    eta: f64,
    alpha: f64,
    omega_secs: f64,
    pf: f64,
    s: u32,
    exponent: CollisionExponent,
    q_max: u32,
) -> Option<RedundancyPlan> {
    (1..=q_max)
        .filter_map(|q| plan_for_q(q, eta, alpha, omega_secs, pf, s, exponent))
        .min_by(|a, b| a.l_prime.partial_cmp(&b.l_prime).unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;

    // The paper's worked example: ω = 36 µs, α = 1, η = 5 %, P_f = 0.05 %,
    // S = 3.
    const OMEGA: f64 = 36e-6;
    const ETA: f64 = 0.05;
    const PF: f64 = 0.0005;
    const S: u32 = 3;

    #[test]
    fn paper_example_optimal_q_is_3() {
        let plan =
            optimal_redundancy(ETA, 1.0, OMEGA, PF, S, CollisionExponent::SMinusOne, 12).unwrap();
        assert_eq!(plan.q, 3, "paper: the optimal value of Q is 3");
    }

    #[test]
    fn paper_example_beta_and_pc() {
        let plan = plan_for_q(3, ETA, 1.0, OMEGA, PF, S, CollisionExponent::SMinusOne).unwrap();
        // paper: "The resulting channel utilization is 2.07 %"
        assert!((plan.beta - 0.0207).abs() < 2e-4, "beta = {}", plan.beta);
        // paper: "L is not reached by Pc = 7.9 % of all discovery attempts"
        assert!((plan.pc - 0.079).abs() < 1e-3, "pc = {}", plan.pc);
    }

    #[test]
    fn paper_example_latency_same_order() {
        // Our exact evaluation gives L′ ≈ 0.178 s vs. the paper's 0.1583 s
        // (≈12 %; see EXPERIMENTS.md — the paper's own numbers use rounded
        // intermediates). The pair worst case computes to ≈0.059 s vs. the
        // paper's 0.05 s.
        let plan = plan_for_q(3, ETA, 1.0, OMEGA, PF, S, CollisionExponent::SMinusOne).unwrap();
        assert!((plan.l_prime - 0.178).abs() < 5e-3, "l' = {}", plan.l_prime);
        assert!((plan.pair_worst_case - 0.059).abs() < 2e-3);
    }

    #[test]
    fn text_variant_does_not_match_example() {
        // with the 2(S−2) exponent, S = 3 → single interferer and β = 4.1 %:
        // clearly not the published 2.07 % — documents why SMinusOne is the
        // default.
        let plan = plan_for_q(3, ETA, 1.0, OMEGA, PF, S, CollisionExponent::SMinusTwo).unwrap();
        assert!((plan.beta - 0.0414).abs() < 5e-4);
    }

    #[test]
    fn eq32_failure_rate_roundtrip() {
        let exponent = CollisionExponent::SMinusOne;
        for q in [1u32, 2, 3, 5] {
            let beta = beta_for_redundancy(q, PF, S, exponent).unwrap();
            let pf = failure_rate(q, S, beta, exponent);
            assert!((pf - PF).abs() < 1e-12, "q {q}");
        }
    }

    #[test]
    fn fractional_redundancy_interpolates() {
        let exponent = CollisionExponent::SMinusOne;
        let beta = 0.02;
        let lo = failure_rate(2, S, beta, exponent);
        let hi = failure_rate(3, S, beta, exponent);
        let mid = failure_rate_fractional(2, 0.5, S, beta, exponent);
        assert!(hi < mid && mid < lo);
        assert!((mid - 0.5 * (lo + hi)).abs() < 1e-15);
        // q_frac = 0 and 1 are the pure cases
        assert_eq!(failure_rate_fractional(2, 0.0, S, beta, exponent), lo);
        assert!((failure_rate_fractional(2, 1.0, S, beta, exponent) - hi).abs() < 1e-18);
    }

    #[test]
    fn higher_redundancy_tolerates_higher_pc_but_costs_beta() {
        let exponent = CollisionExponent::SMinusOne;
        let b1 = beta_for_redundancy(1, PF, S, exponent).unwrap();
        let b3 = beta_for_redundancy(3, PF, S, exponent).unwrap();
        assert!(b3 > b1, "more redundancy allows a busier channel");
    }

    #[test]
    fn infeasible_when_beta_exceeds_budget() {
        // a tiny η cannot afford the β required at large Q
        assert!(plan_for_q(8, 0.005, 1.0, OMEGA, PF, S, CollisionExponent::SMinusOne).is_none());
    }

    #[test]
    fn no_interferers_means_no_plan_needed() {
        assert!(beta_for_redundancy(3, PF, 2, CollisionExponent::SMinusTwo).is_none());
        assert!(beta_for_redundancy(3, PF, 1, CollisionExponent::SMinusOne).is_none());
    }

    #[test]
    fn optimal_q_shifts_with_failure_tolerance() {
        // stricter P_f favours more redundancy
        let strict =
            optimal_redundancy(ETA, 1.0, OMEGA, 1e-6, S, CollisionExponent::SMinusOne, 12).unwrap();
        let loose =
            optimal_redundancy(ETA, 1.0, OMEGA, 0.05, S, CollisionExponent::SMinusOne, 12).unwrap();
        assert!(strict.q >= loose.q);
    }
}
