//! Half-open time intervals and canonical interval sets.
//!
//! The coverage-map machinery of Section 4 of the paper manipulates sets of
//! offsets `Φ₁ ∈ [0, T_C)`: each beacon contributes the set of initial
//! offsets for which it lands in a reception window (the sets `Ω_i` of
//! Eq. 3), and those sets are unions of intervals translated modulo the
//! reception period. [`IntervalSet`] is the exact, canonical representation
//! used for all of that: a sorted list of disjoint, non-adjacent, non-empty
//! half-open intervals.

use crate::time::Tick;
use std::fmt;

/// A half-open interval `[start, end)` on the tick grid.
///
/// Empty intervals (`start >= end`) are never stored inside an
/// [`IntervalSet`]; free-standing `Interval` values may be empty (and report
/// so via [`Interval::is_empty`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Inclusive lower endpoint.
    pub start: Tick,
    /// Exclusive upper endpoint.
    pub end: Tick,
}

impl Interval {
    /// Construct `[start, end)`. `start > end` is allowed and yields an
    /// empty interval (this keeps saturating-arithmetic call sites simple).
    #[inline]
    pub fn new(start: Tick, end: Tick) -> Self {
        Interval { start, end }
    }

    /// The interval `[0, 0)`.
    pub const EMPTY: Interval = Interval {
        start: Tick::ZERO,
        end: Tick::ZERO,
    };

    /// Length of the interval (zero if empty).
    #[inline]
    pub fn measure(&self) -> Tick {
        self.end.saturating_sub(self.start)
    }

    /// `true` iff the interval contains no point.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// `true` iff `t ∈ [start, end)`.
    #[inline]
    pub fn contains(&self, t: Tick) -> bool {
        self.start <= t && t < self.end
    }

    /// Intersection with another interval (possibly empty).
    #[inline]
    pub fn intersect(&self, other: &Interval) -> Interval {
        Interval {
            start: self.start.max(other.start),
            end: self.end.min(other.end),
        }
    }

    /// `true` iff the two intervals share at least one point.
    #[inline]
    pub fn overlaps(&self, other: &Interval) -> bool {
        !self.intersect(other).is_empty()
    }

    /// Translate right by `delta` (panics on overflow).
    #[inline]
    pub fn shifted(&self, delta: Tick) -> Interval {
        Interval {
            start: self.start + delta,
            end: self.end + delta,
        }
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// A canonical set of ticks: sorted, disjoint, non-adjacent, non-empty
/// half-open intervals.
///
/// All operations preserve canonical form. Measures, unions, intersections
/// and complements are exact integer computations.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct IntervalSet {
    ivs: Vec<Interval>,
}

impl IntervalSet {
    /// The empty set.
    pub fn empty() -> Self {
        IntervalSet { ivs: Vec::new() }
    }

    /// Build from an arbitrary collection of intervals (normalizes: drops
    /// empties, sorts, merges overlapping/adjacent).
    pub fn from_intervals<I: IntoIterator<Item = Interval>>(intervals: I) -> Self {
        let mut ivs: Vec<Interval> = intervals.into_iter().filter(|iv| !iv.is_empty()).collect();
        ivs.sort_by_key(|iv| (iv.start, iv.end));
        let mut out: Vec<Interval> = Vec::with_capacity(ivs.len());
        for iv in ivs {
            match out.last_mut() {
                // touching or overlapping: coalesce
                Some(last) if iv.start <= last.end => last.end = last.end.max(iv.end),
                _ => out.push(iv),
            }
        }
        IntervalSet { ivs: out }
    }

    /// A set holding a single interval (empty set if the interval is empty).
    pub fn single(start: Tick, end: Tick) -> Self {
        Self::from_intervals([Interval::new(start, end)])
    }

    /// The canonical intervals, sorted and disjoint.
    #[inline]
    pub fn intervals(&self) -> &[Interval] {
        &self.ivs
    }

    /// `true` iff the set contains no point.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ivs.is_empty()
    }

    /// Number of maximal intervals.
    #[inline]
    pub fn len(&self) -> usize {
        self.ivs.len()
    }

    /// Total measure (sum of interval lengths).
    pub fn measure(&self) -> Tick {
        self.ivs.iter().map(|iv| iv.measure()).sum()
    }

    /// `true` iff `t` is a member.
    pub fn contains(&self, t: Tick) -> bool {
        // binary search on start
        match self.ivs.binary_search_by(|iv| iv.start.cmp(&t)) {
            Ok(_) => true, // t is the start of some interval
            Err(0) => false,
            Err(i) => self.ivs[i - 1].contains(t),
        }
    }

    /// Set union.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        // merge two sorted lists then normalize in one pass
        let mut merged: Vec<Interval> = Vec::with_capacity(self.ivs.len() + other.ivs.len());
        let (mut i, mut j) = (0, 0);
        while i < self.ivs.len() && j < other.ivs.len() {
            if self.ivs[i].start <= other.ivs[j].start {
                merged.push(self.ivs[i]);
                i += 1;
            } else {
                merged.push(other.ivs[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&self.ivs[i..]);
        merged.extend_from_slice(&other.ivs[j..]);
        let mut out: Vec<Interval> = Vec::with_capacity(merged.len());
        for iv in merged {
            match out.last_mut() {
                Some(last) if iv.start <= last.end => last.end = last.end.max(iv.end),
                _ => out.push(iv),
            }
        }
        IntervalSet { ivs: out }
    }

    /// Set intersection.
    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.ivs.len() && j < other.ivs.len() {
            let a = &self.ivs[i];
            let b = &other.ivs[j];
            let cut = a.intersect(b);
            if !cut.is_empty() {
                out.push(cut);
            }
            if a.end <= b.end {
                i += 1;
            } else {
                j += 1;
            }
        }
        IntervalSet { ivs: out }
    }

    /// Set difference `self \ other`.
    pub fn subtract(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        let mut j = 0;
        for a in &self.ivs {
            let mut cur = *a;
            // skip intervals of `other` entirely before `cur`
            while j < other.ivs.len() && other.ivs[j].end <= cur.start {
                j += 1;
            }
            let mut k = j;
            while k < other.ivs.len() && other.ivs[k].start < cur.end {
                let b = other.ivs[k];
                if b.start > cur.start {
                    out.push(Interval::new(cur.start, b.start.min(cur.end)));
                }
                if b.end >= cur.end {
                    cur = Interval::EMPTY;
                    break;
                }
                cur = Interval::new(b.end.max(cur.start), cur.end);
                k += 1;
            }
            if !cur.is_empty() {
                out.push(cur);
            }
        }
        IntervalSet { ivs: out }
    }

    /// Complement within the universe `[0, period)`.
    pub fn complement(&self, period: Tick) -> IntervalSet {
        IntervalSet::single(Tick::ZERO, period).subtract(self)
    }

    /// `true` iff the set covers all of `[0, period)`.
    pub fn covers(&self, period: Tick) -> bool {
        self.ivs.len() == 1 && self.ivs[0].start == Tick::ZERO && self.ivs[0].end >= period
    }

    /// Translate the whole set right by `delta` ticks (no wrap-around).
    pub fn shifted(&self, delta: Tick) -> IntervalSet {
        IntervalSet {
            ivs: self.ivs.iter().map(|iv| iv.shifted(delta)).collect(),
        }
    }

    /// Translate by a *signed* number of ticks **modulo `period`**, assuming
    /// the set lies inside `[0, period)`, and re-normalize.
    ///
    /// This implements the translation step of Eq. 3: shifting the covered
    /// offsets left by Σλ wraps around the period boundary (what shifts out
    /// of `[0, T_C)` on one side re-enters on the other; cf. the proof of
    /// Theorem 4.2).
    pub fn shift_mod(&self, delta: i128, period: Tick) -> IntervalSet {
        assert!(!period.is_zero(), "zero period");
        let p = period.0 as i128;
        let d = delta.rem_euclid(p) as u64; // effective right-shift in [0, p)
        if d == 0 {
            return self.clone();
        }
        let mut parts = Vec::with_capacity(self.ivs.len() + 1);
        for iv in &self.ivs {
            debug_assert!(iv.end.0 <= period.0, "interval outside [0, period)");
            let s = iv.start.0 + d;
            let e = iv.end.0 + d;
            if e <= period.0 {
                parts.push(Interval::new(Tick(s), Tick(e)));
            } else if s >= period.0 {
                parts.push(Interval::new(Tick(s - period.0), Tick(e - period.0)));
            } else {
                // straddles the wrap point: split
                parts.push(Interval::new(Tick(s), period));
                parts.push(Interval::new(Tick::ZERO, Tick(e - period.0)));
            }
        }
        IntervalSet::from_intervals(parts)
    }

    /// The maximal uncovered gaps within `[0, period)`.
    pub fn gaps(&self, period: Tick) -> IntervalSet {
        self.complement(period)
    }

    /// Fold the set modulo `d`: the image of every point under
    /// `t ↦ t mod d`, as a canonical set inside `[0, d)`.
    ///
    /// This is the residue-class view of a coverage set: when beacon
    /// shifts walk an arithmetic progression with common difference `d`
    /// (the gcd of the two schedule periods), the union of all shifted
    /// images of a set `S` tiles the period with `fold_mod(S, d)` — so
    /// the *ultimate* coverage of an infinite expansion is computable
    /// from one fold instead of enumerating every residue class.
    pub fn fold_mod(&self, d: Tick) -> IntervalSet {
        assert!(!d.is_zero(), "zero modulus");
        let mut parts = Vec::with_capacity(self.ivs.len() + 1);
        for iv in &self.ivs {
            if iv.measure() >= d {
                // a span of at least one full residue period covers all classes
                return IntervalSet::single(Tick::ZERO, d);
            }
            let s = Tick(iv.start.0 % d.0);
            let e = s + iv.measure();
            if e.0 <= d.0 {
                parts.push(Interval::new(s, e));
            } else {
                // straddles the fold point: split
                parts.push(Interval::new(s, d));
                parts.push(Interval::new(Tick::ZERO, Tick(e.0 - d.0)));
            }
        }
        IntervalSet::from_intervals(parts)
    }

    /// All endpoint ticks (starts and ends) of the canonical intervals.
    ///
    /// These are the breakpoints at which coverage membership can change —
    /// the exact-analysis engine evaluates latency only at these points.
    pub fn breakpoints(&self) -> impl Iterator<Item = Tick> + '_ {
        self.ivs.iter().flat_map(|iv| [iv.start, iv.end])
    }
}

impl fmt::Debug for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.ivs.iter()).finish()
    }
}

impl FromIterator<Interval> for IntervalSet {
    fn from_iter<I: IntoIterator<Item = Interval>>(iter: I) -> Self {
        IntervalSet::from_intervals(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: u64, b: u64) -> Interval {
        Interval::new(Tick(a), Tick(b))
    }

    fn set(ivs: &[(u64, u64)]) -> IntervalSet {
        IntervalSet::from_intervals(ivs.iter().map(|&(a, b)| iv(a, b)))
    }

    #[test]
    fn interval_basics() {
        let a = iv(2, 5);
        assert_eq!(a.measure(), Tick(3));
        assert!(a.contains(Tick(2)));
        assert!(a.contains(Tick(4)));
        assert!(!a.contains(Tick(5)));
        assert!(!a.contains(Tick(1)));
        assert!(iv(3, 3).is_empty());
        assert!(iv(5, 2).is_empty());
        assert_eq!(iv(5, 2).measure(), Tick::ZERO);
    }

    #[test]
    fn interval_intersect_overlap() {
        assert_eq!(iv(0, 5).intersect(&iv(3, 8)), iv(3, 5));
        assert!(iv(0, 5).overlaps(&iv(4, 6)));
        assert!(!iv(0, 5).overlaps(&iv(5, 6))); // half-open: touching ≠ overlapping
        assert!(iv(0, 5).intersect(&iv(6, 8)).is_empty());
    }

    #[test]
    fn normalization_merges_overlapping_and_adjacent() {
        let s = set(&[(5, 8), (0, 3), (3, 5), (10, 12), (11, 15)]);
        assert_eq!(s.intervals(), &[iv(0, 8), iv(10, 15)]);
        assert_eq!(s.measure(), Tick(13));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn normalization_drops_empties() {
        let s = set(&[(3, 3), (7, 2)]);
        assert!(s.is_empty());
        assert_eq!(s.measure(), Tick::ZERO);
    }

    #[test]
    fn union_is_commutative_and_canonical() {
        let a = set(&[(0, 4), (10, 14)]);
        let b = set(&[(4, 10), (20, 22)]);
        let u1 = a.union(&b);
        let u2 = b.union(&a);
        assert_eq!(u1, u2);
        assert_eq!(u1.intervals(), &[iv(0, 14), iv(20, 22)]);
    }

    #[test]
    fn intersect_sets() {
        let a = set(&[(0, 10), (20, 30)]);
        let b = set(&[(5, 25)]);
        assert_eq!(a.intersect(&b).intervals(), &[iv(5, 10), iv(20, 25)]);
        assert!(a.intersect(&set(&[(10, 20)])).is_empty());
    }

    #[test]
    fn subtract_sets() {
        let a = set(&[(0, 10)]);
        assert_eq!(
            a.subtract(&set(&[(3, 5)])).intervals(),
            &[iv(0, 3), iv(5, 10)]
        );
        assert_eq!(a.subtract(&set(&[(0, 10)])).intervals(), &[] as &[Interval]);
        assert_eq!(
            a.subtract(&set(&[(2, 4), (6, 8)])).intervals(),
            &[iv(0, 2), iv(4, 6), iv(8, 10)]
        );
        // subtrahend outside
        assert_eq!(a.subtract(&set(&[(20, 30)])), a);
        // subtrahend clipping both ends
        assert_eq!(
            set(&[(5, 15)])
                .subtract(&set(&[(0, 7), (12, 20)]))
                .intervals(),
            &[iv(7, 12)]
        );
    }

    #[test]
    fn complement_and_covers() {
        let a = set(&[(0, 3), (5, 10)]);
        assert_eq!(a.complement(Tick(12)).intervals(), &[iv(3, 5), iv(10, 12)]);
        assert!(!a.covers(Tick(12)));
        assert!(set(&[(0, 12)]).covers(Tick(12)));
        assert!(set(&[(0, 15)]).covers(Tick(12)));
        assert!(!set(&[(1, 12)]).covers(Tick(12)));
        assert!(IntervalSet::empty().complement(Tick(5)).covers(Tick(5)));
    }

    #[test]
    fn shift_mod_wraps_and_preserves_measure() {
        // [8,10) shifted right by 3 in period 10 wraps to [0,1) ∪ [1..? ...]
        let s = set(&[(8, 10)]);
        let shifted = s.shift_mod(3, Tick(10));
        assert_eq!(shifted.intervals(), &[iv(1, 3)]);

        // straddling case
        let s = set(&[(7, 9)]);
        let shifted = s.shift_mod(2, Tick(10));
        assert_eq!(shifted.intervals(), &[iv(0, 1), iv(9, 10)]);
        assert_eq!(shifted.measure(), s.measure());
    }

    #[test]
    fn shift_mod_negative_delta() {
        let s = set(&[(0, 2)]);
        let shifted = s.shift_mod(-3, Tick(10));
        assert_eq!(shifted.intervals(), &[iv(7, 9)]);
        // shifting by a full period is the identity
        assert_eq!(s.shift_mod(10, Tick(10)), s);
        assert_eq!(s.shift_mod(-20, Tick(10)), s);
    }

    #[test]
    fn shift_mod_identity_on_zero() {
        let s = set(&[(2, 4), (6, 9)]);
        assert_eq!(s.shift_mod(0, Tick(10)), s);
    }

    #[test]
    fn contains_membership() {
        let s = set(&[(2, 4), (6, 9)]);
        assert!(!s.contains(Tick(0)));
        assert!(s.contains(Tick(2)));
        assert!(s.contains(Tick(3)));
        assert!(!s.contains(Tick(4)));
        assert!(!s.contains(Tick(5)));
        assert!(s.contains(Tick(6)));
        assert!(s.contains(Tick(8)));
        assert!(!s.contains(Tick(9)));
    }

    #[test]
    fn breakpoints_enumerate_endpoints() {
        let s = set(&[(2, 4), (6, 9)]);
        let bp: Vec<Tick> = s.breakpoints().collect();
        assert_eq!(bp, vec![Tick(2), Tick(4), Tick(6), Tick(9)]);
    }

    #[test]
    fn fold_mod_wraps_into_residue_classes() {
        // [8, 12) mod 5 → [3, 5) ∪ [0, 2)
        let s = set(&[(8, 12)]);
        assert_eq!(s.fold_mod(Tick(5)).intervals(), &[iv(0, 2), iv(3, 5)]);
        // an interval spanning a full modulus covers every class
        assert!(set(&[(7, 13)]).fold_mod(Tick(5)).covers(Tick(5)));
        assert!(set(&[(7, 12)]).fold_mod(Tick(5)).covers(Tick(5)));
        // overlapping images merge canonically
        let s = set(&[(0, 2), (10, 12), (23, 24)]);
        assert_eq!(s.fold_mod(Tick(10)).intervals(), &[iv(0, 2), iv(3, 4)]);
        // folding by a period the set already lives in is the identity
        let s = set(&[(1, 3), (6, 9)]);
        assert_eq!(s.fold_mod(Tick(10)), s);
        assert!(IntervalSet::empty().fold_mod(Tick(10)).is_empty());
    }

    #[test]
    fn gaps_are_complement() {
        let s = set(&[(0, 3), (7, 10)]);
        assert_eq!(s.gaps(Tick(10)).intervals(), &[iv(3, 7)]);
    }
}
