//! Error types.

use std::fmt;

/// Errors produced while constructing or analyzing schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NdError {
    /// A schedule violated a structural invariant (unsorted windows,
    /// overlapping beacons, out-of-period elements, …).
    InvalidSchedule(String),
    /// Requested parameters are outside the feasible region of a bound or a
    /// construction (e.g. a duty cycle above 1, or a channel-utilization cap
    /// that leaves no reception budget).
    InfeasibleParameters(String),
    /// An analysis could not complete (e.g. the horizon was too short to
    /// prove determinism).
    AnalysisFailed(String),
}

impl fmt::Display for NdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NdError::InvalidSchedule(msg) => write!(f, "invalid schedule: {msg}"),
            NdError::InfeasibleParameters(msg) => write!(f, "infeasible parameters: {msg}"),
            NdError::AnalysisFailed(msg) => write!(f, "analysis failed: {msg}"),
        }
    }
}

impl std::error::Error for NdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(
            NdError::InvalidSchedule("x".into()).to_string(),
            "invalid schedule: x"
        );
        assert_eq!(
            NdError::InfeasibleParameters("y".into()).to_string(),
            "infeasible parameters: y"
        );
        assert_eq!(
            NdError::AnalysisFailed("z".into()).to_string(),
            "analysis failed: z"
        );
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&NdError::InvalidSchedule("x".into()));
    }
}
