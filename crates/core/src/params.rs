//! Radio and energy parameters (Definition 3.5 and Appendix A.2 of the
//! paper).

use crate::time::Tick;

/// Physical parameters of a radio.
///
/// The paper's bounds need only the packet airtime ω and the TX/RX power
/// ratio α = P_tx / P_rx (Definition 3.5). The switching overheads are the
/// non-ideal-radio extensions of Appendix A.2/A.5 and default to zero
/// (ideal radio).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RadioParams {
    /// Packet (beacon) airtime ω.
    pub omega: Tick,
    /// TX/RX power ratio α = P_tx / P_rx.
    pub alpha: f64,
    /// Effective extra active time to go sleep → TX → sleep (`d_oTx`, A.2).
    pub do_tx: Tick,
    /// Effective extra active time to go sleep → RX → sleep (`d_oRx`, A.2).
    pub do_rx: Tick,
    /// Turnaround time TX → RX (`d_oTxRx`, A.5).
    pub do_tx_rx: Tick,
    /// Turnaround time RX → TX (`d_oRxTx`, A.5).
    pub do_rx_tx: Tick,
}

impl RadioParams {
    /// An ideal radio (zero switching overheads) with the given airtime and
    /// power ratio. This is the model under which all Section 5 bounds hold
    /// exactly.
    pub fn ideal(omega: Tick, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
        assert!(!omega.is_zero(), "packet airtime must be positive");
        RadioParams {
            omega,
            alpha,
            do_tx: Tick::ZERO,
            do_rx: Tick::ZERO,
            do_tx_rx: Tick::ZERO,
            do_rx_tx: Tick::ZERO,
        }
    }

    /// The paper's running example: ω = 36 µs (a BLE advertising packet on
    /// an ideal radio) with α = 1 (cf. Appendix A.4 and B).
    pub fn paper_default() -> Self {
        Self::ideal(Tick::from_micros(36), 1.0)
    }

    /// A BLE-flavoured non-ideal radio: 36 µs packets, α = 1, and 150 µs
    /// turnarounds with 130 µs wake-up overheads (typical nRF-class values;
    /// used by the Appendix A.2/A.5 experiments).
    pub fn ble_like() -> Self {
        RadioParams {
            omega: Tick::from_micros(36),
            alpha: 1.0,
            do_tx: Tick::from_micros(130),
            do_rx: Tick::from_micros(130),
            do_tx_rx: Tick::from_micros(150),
            do_rx_tx: Tick::from_micros(150),
        }
    }

    /// `true` iff all switching overheads are zero.
    pub fn is_ideal(&self) -> bool {
        self.do_tx.is_zero()
            && self.do_rx.is_zero()
            && self.do_tx_rx.is_zero()
            && self.do_rx_tx.is_zero()
    }

    /// Packet airtime in fractional seconds (convenience for the f64 bound
    /// formulas).
    pub fn omega_secs(&self) -> f64 {
        self.omega.as_secs_f64()
    }
}

/// A transmission/reception duty-cycle pair (Definition 3.5).
///
/// * `beta` (β) — fraction of time spent transmitting; this equals the
///   channel utilization.
/// * `gamma` (γ) — fraction of time spent receiving.
///
/// The total duty cycle is the weighted sum η = γ + α·β.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DutyCycle {
    /// Transmission duty cycle β (= channel utilization).
    pub beta: f64,
    /// Reception duty cycle γ.
    pub gamma: f64,
}

impl DutyCycle {
    /// Construct from β and γ. Panics on out-of-range values.
    pub fn new(beta: f64, gamma: f64) -> Self {
        assert!((0.0..=1.0).contains(&beta), "beta out of [0,1]: {beta}");
        assert!((0.0..=1.0).contains(&gamma), "gamma out of [0,1]: {gamma}");
        DutyCycle { beta, gamma }
    }

    /// Total duty cycle η = γ + α·β (Definition 3.5).
    pub fn eta(&self, alpha: f64) -> f64 {
        self.gamma + alpha * self.beta
    }

    /// The latency-optimal split of a total budget η between transmission
    /// and reception: β = η/(2α), γ = η/2 (proof of Theorem 5.5).
    pub fn optimal_split(eta: f64, alpha: f64) -> Self {
        assert!(eta > 0.0 && eta <= 1.0, "eta out of (0,1]: {eta}");
        assert!(alpha > 0.0, "alpha must be positive");
        DutyCycle {
            beta: eta / (2.0 * alpha),
            gamma: eta / 2.0,
        }
    }

    /// Split a budget η given a fixed channel-utilization cap β_m
    /// (Theorem 5.6): spend β = min(η/2α, β_m) on transmission and the rest
    /// on reception.
    pub fn constrained_split(eta: f64, alpha: f64, beta_max: f64) -> Self {
        let beta = (eta / (2.0 * alpha)).min(beta_max);
        let gamma = eta - alpha * beta;
        DutyCycle { beta, gamma }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_radio() {
        let r = RadioParams::ideal(Tick::from_micros(36), 1.0);
        assert!(r.is_ideal());
        assert_eq!(r.omega_secs(), 36e-6);
    }

    #[test]
    fn paper_default_matches_appendix() {
        let r = RadioParams::paper_default();
        assert_eq!(r.omega, Tick::from_micros(36));
        assert_eq!(r.alpha, 1.0);
        assert!(r.is_ideal());
    }

    #[test]
    fn ble_like_is_not_ideal() {
        assert!(!RadioParams::ble_like().is_ideal());
    }

    #[test]
    fn eta_weighted_sum() {
        let dc = DutyCycle::new(0.02, 0.03);
        assert_eq!(dc.eta(1.0), 0.05);
        assert!((dc.eta(2.0) - 0.07).abs() < 1e-12);
    }

    #[test]
    fn optimal_split_halves_budget_at_alpha_1() {
        let dc = DutyCycle::optimal_split(0.05, 1.0);
        assert!((dc.beta - 0.025).abs() < 1e-12);
        assert!((dc.gamma - 0.025).abs() < 1e-12);
        assert!((dc.eta(1.0) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn optimal_split_respects_alpha() {
        // α = 2: transmission is twice as expensive, so β = η/4
        let dc = DutyCycle::optimal_split(0.08, 2.0);
        assert!((dc.beta - 0.02).abs() < 1e-12);
        assert!((dc.gamma - 0.04).abs() < 1e-12);
        assert!((dc.eta(2.0) - 0.08).abs() < 1e-12);
    }

    #[test]
    fn constrained_split_caps_beta() {
        // unconstrained optimum would be β = 0.025
        let dc = DutyCycle::constrained_split(0.05, 1.0, 0.01);
        assert!((dc.beta - 0.01).abs() < 1e-12);
        assert!((dc.gamma - 0.04).abs() < 1e-12);
        // cap not binding
        let dc = DutyCycle::constrained_split(0.05, 1.0, 0.5);
        assert!((dc.beta - 0.025).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_nonpositive_alpha() {
        let _ = RadioParams::ideal(Tick::from_micros(1), 0.0);
    }
}
