//! Deterministic seed derivation — the single audited implementation.
//!
//! Several subsystems need many *statistically independent* RNG streams
//! fanned out from one 64-bit root: `nd-netsim` derives one stream per
//! node from the run seed, and `nd-sweep` derives one stream per
//! Monte-Carlo trial from the job's content-hash seed. Both used to carry
//! private copies of the same mixing code; this module is now the only
//! implementation, and its outputs feed content-addressed caches — so the
//! functions here are **frozen**: changing any constant silently
//! invalidates reproducibility guarantees and must be accompanied by an
//! engine ABI bump (see the cache ABI convention in the README).
//!
//! The finalizer is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014; the
//! `splitmix64` output function as used by Vigna's xoshiro reference
//! implementations): an invertible avalanche mix, so distinct inputs give
//! distinct outputs and near inputs (`seed`, `seed+1`, …) land far apart.

/// The SplitMix64 finalizer: one full avalanche round.
///
/// Invertible on `u64`, so it is collision-free; every input bit affects
/// every output bit. Stable forever (cache-key material).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Derive the seed of stream `index` rooted at `root`.
///
/// The index is first spread across the word by a (odd, hence invertible)
/// multiplicative hash, then the combination is finalized with
/// [`splitmix64`] — so streams 0, 1, 2, … are decorrelated even though the
/// roots and indices are tiny integers. For a fixed `root` the map
/// `index → seed` is injective.
///
/// Used for per-node streams (`nd-netsim`, index = node id) and per-trial
/// streams (`nd-sweep`, index = trial number).
pub fn stream_seed(root: u64, index: u64) -> u64 {
    splitmix64(root ^ index.wrapping_mul(0xa076_1d64_78bd_642f))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_reference_vector() {
        // the first output of the published SplitMix64 sequence seeded
        // with 0 — the standard test vector; pins the constants forever
        assert_eq!(splitmix64(0), 0xe220_a839_7b1d_cdaf);
        assert_eq!(splitmix64(1234567), 0x599e_d017_fb08_fc85);
    }

    #[test]
    fn splitmix64_is_injective_on_a_sample() {
        let mut seen = std::collections::HashSet::new();
        for x in 0..10_000u64 {
            assert!(seen.insert(splitmix64(x)));
        }
    }

    #[test]
    fn stream_seeds_are_distinct_and_decorrelated() {
        let mut seen = std::collections::HashSet::new();
        for root in [0u64, 1, 42, u64::MAX] {
            for index in 0..256u64 {
                assert!(seen.insert(stream_seed(root, index)), "collision");
            }
        }
        // neighbouring indices land far apart: no shared high byte runs
        let a = stream_seed(7, 0);
        let b = stream_seed(7, 1);
        assert_ne!(a >> 32, b >> 32);
    }

    #[test]
    fn stream_seed_is_frozen() {
        // these exact values feed content-addressed caches; a change here
        // is an engine ABI change, not a refactor
        assert_eq!(stream_seed(0, 0), splitmix64(0));
        assert_eq!(
            stream_seed(21, 3),
            splitmix64(21 ^ 3u64.wrapping_mul(0xa076_1d64_78bd_642f))
        );
    }
}
