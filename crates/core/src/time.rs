//! Integer time base.
//!
//! All schedules in this crate live on an integer nanosecond grid. The paper's
//! analysis (Section 4) reasons about *real-valued* offsets; working on an
//! integer grid keeps every computation exact (no floating-point epsilon
//! reasoning) while a 1 ns resolution is more than five orders of magnitude
//! finer than the shortest physical quantity in the problem (a packet airtime
//! of ~36 µs), so grid rounding is negligible for every experiment in the
//! paper.
//!
//! [`Tick`] is deliberately a single type used for both instants and
//! durations: the paper's math freely mixes the two (offsets Φ, gaps λ,
//! periods T, latencies L), and a dedicated instant/duration split would add
//! noise without catching real bugs in this domain.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A point in time or a span of time, in integer nanoseconds.
///
/// `Tick` is `Copy`, totally ordered and supports saturating-free checked
/// arithmetic through the standard operators (which panic on overflow in
/// debug builds, as usual for Rust integers). Use [`Tick::checked_sub`] when
/// underflow is expected.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tick(pub u64);

impl Tick {
    /// Zero time.
    pub const ZERO: Tick = Tick(0);
    /// Largest representable time (~584 years).
    pub const MAX: Tick = Tick(u64::MAX);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Tick(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Tick(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Tick(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Tick(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Panics if `s` is negative, NaN, or too large for the `u64` range.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid time in seconds: {s}");
        let ns = (s * 1e9).round();
        assert!(ns <= u64::MAX as f64, "time out of range: {s} s");
        Tick(ns as u64)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Value in fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Value in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` iff this is the zero time.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked subtraction; `None` on underflow.
    #[inline]
    pub fn checked_sub(self, rhs: Tick) -> Option<Tick> {
        self.0.checked_sub(rhs.0).map(Tick)
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: Tick) -> Option<Tick> {
        self.0.checked_add(rhs.0).map(Tick)
    }

    /// Saturating subtraction (clamps at zero).
    #[inline]
    pub fn saturating_sub(self, rhs: Tick) -> Tick {
        Tick(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition (clamps at [`Tick::MAX`]).
    #[inline]
    pub fn saturating_add(self, rhs: Tick) -> Tick {
        Tick(self.0.saturating_add(rhs.0))
    }

    /// Multiply by an integer scalar.
    #[inline]
    pub fn scaled(self, k: u64) -> Tick {
        Tick(self.0 * k)
    }

    /// Scale by a non-negative float, rounding to the nearest nanosecond.
    pub fn scaled_f64(self, k: f64) -> Tick {
        assert!(k.is_finite() && k >= 0.0, "invalid scale factor: {k}");
        Tick((self.0 as f64 * k).round() as u64)
    }

    /// Euclidean remainder `self mod period`. Panics if `period` is zero.
    #[inline]
    pub fn rem_euclid(self, period: Tick) -> Tick {
        assert!(!period.is_zero(), "zero period");
        Tick(self.0 % period.0)
    }

    /// Integer division rounding up: the smallest `k` with `k * rhs >= self`.
    ///
    /// This is the ⌈·⌉ of the paper's Beaconing Theorem (Theorem 4.3).
    #[inline]
    pub fn div_ceil(self, rhs: Tick) -> u64 {
        assert!(!rhs.is_zero(), "division by zero ticks");
        self.0.div_ceil(rhs.0)
    }

    /// Absolute difference.
    #[inline]
    pub fn abs_diff(self, rhs: Tick) -> Tick {
        Tick(self.0.abs_diff(rhs.0))
    }

    /// Minimum of two times.
    #[inline]
    pub fn min(self, rhs: Tick) -> Tick {
        Tick(self.0.min(rhs.0))
    }

    /// Maximum of two times.
    #[inline]
    pub fn max(self, rhs: Tick) -> Tick {
        Tick(self.0.max(rhs.0))
    }
}

impl Add for Tick {
    type Output = Tick;
    #[inline]
    fn add(self, rhs: Tick) -> Tick {
        Tick(self.0 + rhs.0)
    }
}

impl AddAssign for Tick {
    #[inline]
    fn add_assign(&mut self, rhs: Tick) {
        self.0 += rhs.0;
    }
}

impl Sub for Tick {
    type Output = Tick;
    #[inline]
    fn sub(self, rhs: Tick) -> Tick {
        Tick(self.0 - rhs.0)
    }
}

impl SubAssign for Tick {
    #[inline]
    fn sub_assign(&mut self, rhs: Tick) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Tick {
    type Output = Tick;
    #[inline]
    fn mul(self, rhs: u64) -> Tick {
        Tick(self.0 * rhs)
    }
}

impl Div<u64> for Tick {
    type Output = Tick;
    #[inline]
    fn div(self, rhs: u64) -> Tick {
        Tick(self.0 / rhs)
    }
}

impl Div<Tick> for Tick {
    type Output = u64;
    /// Integer division of two times (how many `rhs` fit into `self`).
    #[inline]
    fn div(self, rhs: Tick) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<Tick> for Tick {
    type Output = Tick;
    #[inline]
    fn rem(self, rhs: Tick) -> Tick {
        Tick(self.0 % rhs.0)
    }
}

impl Sum for Tick {
    fn sum<I: Iterator<Item = Tick>>(iter: I) -> Tick {
        iter.fold(Tick::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Tick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Tick {
    /// Human-readable rendering with an automatically chosen unit.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == 0 {
            write!(f, "0s")
        } else if ns.is_multiple_of(1_000_000_000) {
            write!(f, "{}s", ns / 1_000_000_000)
        } else if ns >= 1_000_000_000 {
            write!(f, "{:.6}s", self.as_secs_f64())
        } else if ns.is_multiple_of(1_000_000) {
            write!(f, "{}ms", ns / 1_000_000)
        } else if ns.is_multiple_of(1_000) {
            write!(f, "{}us", ns / 1_000)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Tick::from_micros(1), Tick::from_nanos(1_000));
        assert_eq!(Tick::from_millis(1), Tick::from_micros(1_000));
        assert_eq!(Tick::from_secs(1), Tick::from_millis(1_000));
        assert_eq!(Tick::from_secs_f64(1.5), Tick::from_millis(1_500));
        assert_eq!(Tick::from_secs_f64(0.0), Tick::ZERO);
    }

    #[test]
    fn roundtrip_f64() {
        let t = Tick::from_micros(36);
        assert_eq!(t.as_secs_f64(), 36e-6);
        assert_eq!(t.as_micros_f64(), 36.0);
        assert_eq!(Tick::from_secs_f64(t.as_secs_f64()), t);
    }

    #[test]
    fn arithmetic() {
        let a = Tick::from_micros(10);
        let b = Tick::from_micros(4);
        assert_eq!(a + b, Tick::from_micros(14));
        assert_eq!(a - b, Tick::from_micros(6));
        assert_eq!(a * 3, Tick::from_micros(30));
        assert_eq!(a / 2, Tick::from_micros(5));
        assert_eq!(a / b, 2);
        assert_eq!(a % b, Tick::from_micros(2));
        assert_eq!(a.abs_diff(b), b.abs_diff(a));
    }

    #[test]
    fn div_ceil_matches_theorem_4_3_examples() {
        // T_C = 10, Σd = 3 → M = ⌈10/3⌉ = 4
        assert_eq!(Tick(10).div_ceil(Tick(3)), 4);
        // exact division: no ceiling slack
        assert_eq!(Tick(9).div_ceil(Tick(3)), 3);
        assert_eq!(Tick(1).div_ceil(Tick(3)), 1);
    }

    #[test]
    fn checked_and_saturating() {
        assert_eq!(Tick(3).checked_sub(Tick(5)), None);
        assert_eq!(Tick(5).checked_sub(Tick(3)), Some(Tick(2)));
        assert_eq!(Tick(3).saturating_sub(Tick(5)), Tick::ZERO);
        assert_eq!(Tick::MAX.saturating_add(Tick(1)), Tick::MAX);
        assert_eq!(Tick::MAX.checked_add(Tick(1)), None);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Tick::ZERO.to_string(), "0s");
        assert_eq!(Tick::from_nanos(17).to_string(), "17ns");
        assert_eq!(Tick::from_micros(36).to_string(), "36us");
        assert_eq!(Tick::from_millis(250).to_string(), "250ms");
        assert_eq!(Tick::from_secs(2).to_string(), "2s");
        assert_eq!(Tick::from_millis(1500).to_string(), "1.500000s");
    }

    #[test]
    fn rem_euclid_and_scaling() {
        assert_eq!(Tick(17).rem_euclid(Tick(5)), Tick(2));
        assert_eq!(Tick(100).scaled(3), Tick(300));
        assert_eq!(Tick(100).scaled_f64(0.5), Tick(50));
        assert_eq!(Tick(3).scaled_f64(1.0 / 3.0), Tick(1));
    }

    #[test]
    fn sum_iterator() {
        let total: Tick = [Tick(1), Tick(2), Tick(3)].into_iter().sum();
        assert_eq!(total, Tick(6));
    }

    #[test]
    #[should_panic(expected = "invalid time")]
    fn from_secs_f64_rejects_negative() {
        let _ = Tick::from_secs_f64(-1.0);
    }
}
