//! Beacon sequences and reception-window sequences (Definitions 3.1–3.3 of
//! the paper).
//!
//! A *reception window sequence* `C` is a finite list of windows
//! `(t_i, d_i)` inside one period `T_C`; the infinite sequence `C∞` is its
//! periodic repetition. A *beacon sequence* `B` is a finite list of
//! transmission instants `τ_i` inside one period `T_B`, repeated
//! periodically (Lemma 5.2 proves that all latency/duty-cycle-optimal beacon
//! sequences are repetitive, so a periodic representation loses no
//! generality for the protocols in this repository; non-repetitive reception
//! sequences are handled by the bounds in Appendix A.1 and, operationally,
//! by the simulator's reactive behaviours).

use crate::error::NdError;
use crate::interval::{Interval, IntervalSet};
use crate::params::DutyCycle;
use crate::time::Tick;

/// One reception window: starts at `t` (relative to the period origin) and
/// lasts `d` ticks (Definition 3.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Window {
    /// Start offset within the period.
    pub t: Tick,
    /// Duration.
    pub d: Tick,
}

impl Window {
    /// Construct a window.
    pub fn new(t: Tick, d: Tick) -> Self {
        Window { t, d }
    }

    /// End offset (`t + d`).
    pub fn end(&self) -> Tick {
        self.t + self.d
    }

    /// The window as a half-open interval.
    pub fn interval(&self) -> Interval {
        Interval::new(self.t, self.end())
    }
}

/// A finite reception-window sequence `C` with period `T_C`
/// (Definition 3.1). The infinite sequence `C∞` is its periodic repetition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReceptionWindows {
    windows: Vec<Window>,
    period: Tick,
}

impl ReceptionWindows {
    /// Build and validate a reception-window sequence.
    ///
    /// Requirements:
    /// * the period is positive,
    /// * at least one window with positive duration,
    /// * windows are sorted by start, pairwise disjoint, and contained in
    ///   `[0, T_C)` (a window may not straddle the period boundary — rotate
    ///   the origin instead, cf. [`ReceptionWindows::rotated`]).
    pub fn new(windows: Vec<Window>, period: Tick) -> Result<Self, NdError> {
        if period.is_zero() {
            return Err(NdError::InvalidSchedule("period must be positive".into()));
        }
        if windows.is_empty() {
            return Err(NdError::InvalidSchedule(
                "at least one reception window required".into(),
            ));
        }
        let mut prev_end = Tick::ZERO;
        for (i, w) in windows.iter().enumerate() {
            if w.d.is_zero() {
                return Err(NdError::InvalidSchedule(format!(
                    "window {i} has zero duration"
                )));
            }
            if i > 0 && w.t < prev_end {
                return Err(NdError::InvalidSchedule(format!(
                    "window {i} overlaps or is unsorted (starts at {}, previous ends at {prev_end})",
                    w.t
                )));
            }
            if w.end() > period {
                return Err(NdError::InvalidSchedule(format!(
                    "window {i} ends at {} beyond the period {period}",
                    w.end()
                )));
            }
            prev_end = w.end();
        }
        Ok(ReceptionWindows { windows, period })
    }

    /// A sequence with a single window of length `d` starting at `t` in a
    /// period of `T_C` — the `n_C = 1` shape that Appendix A.2/A.3 prove is
    /// the most efficient one.
    pub fn single(t: Tick, d: Tick, period: Tick) -> Result<Self, NdError> {
        Self::new(vec![Window::new(t, d)], period)
    }

    /// The windows within one period, sorted by start.
    pub fn windows(&self) -> &[Window] {
        &self.windows
    }

    /// The period `T_C`.
    pub fn period(&self) -> Tick {
        self.period
    }

    /// Number of windows per period (`n_C`).
    pub fn n_windows(&self) -> usize {
        self.windows.len()
    }

    /// Total listening time per period (`Σ d_i`).
    pub fn sum_d(&self) -> Tick {
        self.windows.iter().map(|w| w.d).sum()
    }

    /// Reception duty cycle γ = Σd / T_C (Lemma 3.1).
    pub fn gamma(&self) -> f64 {
        self.sum_d().as_nanos() as f64 / self.period.as_nanos() as f64
    }

    /// The windows as a canonical [`IntervalSet`] on `[0, T_C)`.
    pub fn interval_set(&self) -> IntervalSet {
        IntervalSet::from_intervals(self.windows.iter().map(|w| w.interval()))
    }

    /// The same sequence with the period origin rotated right by `delta`
    /// (i.e. every window start becomes `(t + delta) mod T_C`). Windows that
    /// would straddle the boundary are split into two.
    pub fn rotated(&self, delta: Tick) -> ReceptionWindows {
        let set = self
            .interval_set()
            .shift_mod(delta.as_nanos() as i128, self.period);
        let windows = set
            .intervals()
            .iter()
            .map(|iv| Window::new(iv.start, iv.measure()))
            .collect();
        // set is canonical and inside [0, period), so this cannot fail
        ReceptionWindows::new(windows, self.period).expect("rotation preserves validity")
    }

    /// Whether the instant `t` (absolute time, window sequence starting at
    /// absolute 0) falls inside some reception window.
    pub fn contains_instant(&self, t: Tick) -> bool {
        let phase = t.rem_euclid(self.period);
        self.windows.iter().any(|w| w.interval().contains(phase))
    }

    /// Iterate over absolute window intervals that intersect
    /// `[from, until)`, assuming the sequence starts at absolute time 0.
    pub fn instances_in(&self, from: Tick, until: Tick) -> Vec<Interval> {
        let mut out = Vec::new();
        self.for_each_instance_in(from, until, |iv| out.push(iv));
        out
    }

    /// Visit every window interval intersecting `[from, until)` in
    /// nondecreasing start order (clipped to the range), without
    /// allocating — the simulator refill path calls this on every batch.
    pub fn for_each_instance_in(&self, from: Tick, until: Tick, mut f: impl FnMut(Interval)) {
        if from >= until {
            return;
        }
        let first_cycle = from.as_nanos() / self.period.as_nanos();
        let mut cycle = first_cycle.saturating_sub(1);
        loop {
            let base = Tick(cycle * self.period.as_nanos());
            if base >= until {
                break;
            }
            for w in &self.windows {
                let iv = Interval::new(base + w.t, base + w.end());
                if iv.end > from && iv.start < until {
                    f(Interval::new(iv.start.max(from), iv.end.min(until)));
                }
            }
            cycle += 1;
        }
    }
}

/// A finite beacon sequence `B` with period `T_B` (Definition 3.2,
/// restricted to repetitive sequences per Lemma 5.2). Beacons are sent at
/// the instants `times[i] + k·T_B` for all `k ≥ 0`, each with airtime ω.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BeaconSeq {
    times: Vec<Tick>,
    period: Tick,
    omega: Tick,
}

impl BeaconSeq {
    /// Build and validate a beacon sequence.
    ///
    /// Requirements: positive period and airtime, at least one beacon,
    /// strictly increasing transmission instants inside `[0, T_B)`, and
    /// consecutive transmissions (including across the period wrap) must not
    /// overlap — a half-duplex radio sends one packet at a time.
    pub fn new(times: Vec<Tick>, period: Tick, omega: Tick) -> Result<Self, NdError> {
        if period.is_zero() {
            return Err(NdError::InvalidSchedule("period must be positive".into()));
        }
        if omega.is_zero() {
            return Err(NdError::InvalidSchedule("airtime must be positive".into()));
        }
        if times.is_empty() {
            return Err(NdError::InvalidSchedule(
                "at least one beacon required".into(),
            ));
        }
        for (i, &t) in times.iter().enumerate() {
            if t >= period {
                return Err(NdError::InvalidSchedule(format!(
                    "beacon {i} at {t} is outside the period {period}"
                )));
            }
            if i > 0 && t < times[i - 1] + omega {
                return Err(NdError::InvalidSchedule(format!(
                    "beacons {} and {i} overlap in time",
                    i - 1
                )));
            }
        }
        // wrap-around: last beacon of one instance vs first of the next
        if !times.is_empty() {
            let last = *times.last().unwrap();
            let first_next = times[0] + period;
            if last + omega > first_next {
                return Err(NdError::InvalidSchedule(
                    "last beacon overlaps the first beacon of the next period".into(),
                ));
            }
        }
        Ok(BeaconSeq {
            times,
            period,
            omega,
        })
    }

    /// A sequence with beacons at a uniform gap λ = `period / count`
    /// starting at `phase`. The period must be divisible by `count`.
    pub fn uniform(count: u64, period: Tick, omega: Tick, phase: Tick) -> Result<Self, NdError> {
        if count == 0 {
            return Err(NdError::InvalidSchedule(
                "at least one beacon required".into(),
            ));
        }
        if !period.as_nanos().is_multiple_of(count) {
            return Err(NdError::InvalidSchedule(format!(
                "period {period} not divisible by beacon count {count}"
            )));
        }
        let gap = period / count;
        let times = (0..count)
            .map(|i| (phase + gap * i).rem_euclid(period))
            .collect::<Vec<_>>();
        let mut times = times;
        times.sort();
        Self::new(times, period, omega)
    }

    /// Transmission instants within one period (sorted, relative to the
    /// period origin).
    pub fn times(&self) -> &[Tick] {
        &self.times
    }

    /// The period `T_B`.
    pub fn period(&self) -> Tick {
        self.period
    }

    /// Packet airtime ω.
    pub fn omega(&self) -> Tick {
        self.omega
    }

    /// Number of beacons per period (`m_B`).
    pub fn n_beacons(&self) -> usize {
        self.times.len()
    }

    /// Transmission duty cycle β = m_B·ω / T_B (Lemma 3.1). This equals the
    /// channel utilization.
    pub fn beta(&self) -> f64 {
        (self.times.len() as u64 * self.omega.as_nanos()) as f64 / self.period.as_nanos() as f64
    }

    /// Mean beacon gap λ̄ = T_B / m_B.
    pub fn mean_gap(&self) -> Tick {
        self.period / self.times.len() as u64
    }

    /// The gaps λ_i = τ_{i+1} − τ_i between consecutive beacons, including
    /// the wrap-around gap from the last beacon back to the first of the
    /// next period. Their sum is exactly `T_B`.
    pub fn gaps(&self) -> Vec<Tick> {
        let n = self.times.len();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            if i + 1 < n {
                out.push(self.times[i + 1] - self.times[i]);
            } else {
                out.push(self.times[0] + self.period - self.times[i]);
            }
        }
        out
    }

    /// The largest gap between consecutive beacons (used for worst-case
    /// "came into range just after a beacon" reasoning).
    pub fn max_gap(&self) -> Tick {
        self.gaps().into_iter().max().unwrap()
    }

    /// All transmission instants in absolute time within `[from, until)`,
    /// assuming the sequence starts at absolute time 0.
    pub fn instants_in(&self, from: Tick, until: Tick) -> Vec<Tick> {
        let mut out = Vec::new();
        self.for_each_instant_in(from, until, |t| out.push(t));
        out
    }

    /// Visit every transmission instant in `[from, until)` in increasing
    /// order without allocating — the simulator refill path calls this on
    /// every batch.
    pub fn for_each_instant_in(&self, from: Tick, until: Tick, mut f: impl FnMut(Tick)) {
        if from >= until {
            return;
        }
        let mut cycle = (from.as_nanos() / self.period.as_nanos()).saturating_sub(1);
        loop {
            let base = Tick(cycle * self.period.as_nanos());
            if base >= until {
                break;
            }
            for &t in &self.times {
                let inst = base + t;
                if inst >= from && inst < until {
                    f(inst);
                }
            }
            cycle += 1;
        }
    }

    /// The first `n` transmission instants at/after absolute time 0, as
    /// offsets from the first instant (i.e. `τ_i − τ_1` for `i = 1..=n`).
    /// This is the sequence `B'` of Section 4 in canonical form.
    pub fn relative_instants(&self, n: usize) -> Vec<Tick> {
        let mut out = Vec::with_capacity(n);
        let first = self.times[0];
        let mut cycle = 0u64;
        'outer: loop {
            for &t in &self.times {
                let inst = Tick(cycle * self.period.as_nanos()) + t;
                out.push(inst - first);
                if out.len() == n {
                    break 'outer;
                }
            }
            cycle += 1;
        }
        out
    }

    /// The same sequence with all instants shifted right by `delta` modulo
    /// the period (re-sorted).
    pub fn rotated(&self, delta: Tick) -> BeaconSeq {
        let mut times: Vec<Tick> = self
            .times
            .iter()
            .map(|&t| (t + delta).rem_euclid(self.period))
            .collect();
        times.sort();
        BeaconSeq::new(times, self.period, self.omega).expect("rotation preserves validity")
    }
}

/// A full ND protocol on one device: a beacon sequence plus a
/// reception-window sequence (Definition 3.3). The two may have different
/// periods.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    /// The transmission side (`B∞`). `None` for pure scanners.
    pub beacons: Option<BeaconSeq>,
    /// The reception side (`C∞`). `None` for pure beacons/advertisers.
    pub windows: Option<ReceptionWindows>,
}

impl Schedule {
    /// A device that both transmits and listens.
    pub fn full(beacons: BeaconSeq, windows: ReceptionWindows) -> Self {
        Schedule {
            beacons: Some(beacons),
            windows: Some(windows),
        }
    }

    /// A transmit-only device (e.g. the beaconing side of Theorem 5.4).
    pub fn tx_only(beacons: BeaconSeq) -> Self {
        Schedule {
            beacons: Some(beacons),
            windows: None,
        }
    }

    /// A receive-only device (e.g. the scanning side of Theorem 5.4).
    pub fn rx_only(windows: ReceptionWindows) -> Self {
        Schedule {
            beacons: None,
            windows: Some(windows),
        }
    }

    /// The duty-cycle pair (β, γ) of this schedule (Lemma 3.1).
    pub fn duty_cycle(&self) -> DutyCycle {
        DutyCycle {
            beta: self.beacons.as_ref().map_or(0.0, |b| b.beta()),
            gamma: self.windows.as_ref().map_or(0.0, |c| c.gamma()),
        }
    }

    /// Total duty cycle η = γ + αβ.
    pub fn eta(&self, alpha: f64) -> f64 {
        self.duty_cycle().eta(alpha)
    }

    /// Fraction of reception time lost to the device's own transmissions
    /// overlapping its own reception windows, over one hyper-period
    /// (Appendix A.5). Returns 0 for tx-only or rx-only schedules.
    ///
    /// `guard` is the per-overlap blanked time in excess of the packet
    /// itself (`d_oTxRx + d_oRxTx` for a non-ideal radio).
    pub fn self_blocking_fraction(&self, guard: Tick) -> f64 {
        let (Some(b), Some(c)) = (&self.beacons, &self.windows) else {
            return 0.0;
        };
        let hyper = lcm(b.period().as_nanos(), c.period().as_nanos());
        let horizon = Tick(hyper);
        let windows = c.instances_in(Tick::ZERO, horizon);
        let mut blocked = Tick::ZERO;
        for tx in b.instants_in(Tick::ZERO, horizon) {
            let tx_iv = Interval::new(tx.saturating_sub(guard), tx + b.omega() + guard);
            for w in &windows {
                blocked += w.intersect(&tx_iv).measure();
            }
        }
        let total: Tick = windows.iter().map(|w| w.measure()).sum();
        if total.is_zero() {
            0.0
        } else {
            blocked.as_nanos() as f64 / total.as_nanos() as f64
        }
    }
}

/// Least common multiple of two nanosecond counts.
pub(crate) fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

/// Greatest common divisor.
pub(crate) fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_windows() -> ReceptionWindows {
        // Figure 1a-style: three windows per period of 100 µs
        ReceptionWindows::new(
            vec![
                Window::new(Tick::from_micros(0), Tick::from_micros(5)),
                Window::new(Tick::from_micros(30), Tick::from_micros(10)),
                Window::new(Tick::from_micros(70), Tick::from_micros(5)),
            ],
            Tick::from_micros(100),
        )
        .unwrap()
    }

    #[test]
    fn window_validation_rejects_bad_inputs() {
        let p = Tick::from_micros(100);
        assert!(ReceptionWindows::new(vec![], p).is_err());
        assert!(ReceptionWindows::new(vec![Window::new(Tick::ZERO, Tick::ZERO)], p).is_err());
        // overlap
        assert!(ReceptionWindows::new(
            vec![
                Window::new(Tick::from_micros(0), Tick::from_micros(20)),
                Window::new(Tick::from_micros(10), Tick::from_micros(5)),
            ],
            p
        )
        .is_err());
        // beyond the period
        assert!(ReceptionWindows::new(
            vec![Window::new(Tick::from_micros(95), Tick::from_micros(10))],
            p
        )
        .is_err());
        // zero period
        assert!(ReceptionWindows::single(Tick::ZERO, Tick(1), Tick::ZERO).is_err());
    }

    #[test]
    fn gamma_is_sum_d_over_period() {
        let c = simple_windows();
        assert_eq!(c.sum_d(), Tick::from_micros(20));
        assert!((c.gamma() - 0.2).abs() < 1e-12);
        assert_eq!(c.n_windows(), 3);
    }

    #[test]
    fn rotation_preserves_gamma_and_wraps() {
        let c = simple_windows();
        let r = c.rotated(Tick::from_micros(28));
        assert!((r.gamma() - c.gamma()).abs() < 1e-12);
        // the window at 70 (length 5) moves to 98 and is split: [98,100) + [0,3)
        assert!(r.windows().iter().any(|w| w.t == Tick::from_micros(98)));
        assert!(r.windows().iter().any(|w| w.t == Tick::ZERO));
    }

    #[test]
    fn contains_instant_across_periods() {
        let c = simple_windows();
        assert!(c.contains_instant(Tick::from_micros(32)));
        assert!(c.contains_instant(Tick::from_micros(132))); // next period
        assert!(!c.contains_instant(Tick::from_micros(50)));
        assert!(!c.contains_instant(Tick::from_micros(75))); // window ends at 75
        assert!(c.contains_instant(Tick::from_micros(74)));
    }

    #[test]
    fn instances_in_clips_to_range() {
        let c = simple_windows();
        let ivs = c.instances_in(Tick::from_micros(32), Tick::from_micros(72));
        // [32,40) (clipped), [70,72) (clipped)
        assert_eq!(ivs.len(), 2);
        assert_eq!(
            ivs[0],
            Interval::new(Tick::from_micros(32), Tick::from_micros(40))
        );
        assert_eq!(
            ivs[1],
            Interval::new(Tick::from_micros(70), Tick::from_micros(72))
        );
    }

    #[test]
    fn beacon_validation() {
        let p = Tick::from_micros(100);
        let w = Tick::from_micros(4);
        assert!(BeaconSeq::new(vec![], p, w).is_err());
        // overlapping beacons
        assert!(BeaconSeq::new(vec![Tick::from_micros(0), Tick::from_micros(2)], p, w).is_err());
        // outside period
        assert!(BeaconSeq::new(vec![Tick::from_micros(100)], p, w).is_err());
        // wrap-around overlap: beacon at 98 (ends 102) vs next period's beacon at 100+0
        assert!(BeaconSeq::new(vec![Tick::from_micros(0), Tick::from_micros(98)], p, w).is_err());
        // valid
        assert!(BeaconSeq::new(vec![Tick::from_micros(0), Tick::from_micros(50)], p, w).is_ok());
    }

    #[test]
    fn uniform_beacons() {
        let b = BeaconSeq::uniform(4, Tick::from_micros(100), Tick::from_micros(4), Tick::ZERO)
            .unwrap();
        assert_eq!(b.n_beacons(), 4);
        assert_eq!(b.mean_gap(), Tick::from_micros(25));
        assert_eq!(b.gaps(), vec![Tick::from_micros(25); 4]);
        assert_eq!(b.max_gap(), Tick::from_micros(25));
        assert!((b.beta() - 0.16).abs() < 1e-12);
        // phase rotation keeps count and beta
        let b2 = BeaconSeq::uniform(
            4,
            Tick::from_micros(100),
            Tick::from_micros(4),
            Tick::from_micros(7),
        )
        .unwrap();
        assert_eq!(b2.times()[0], Tick::from_micros(7));
        assert!((b2.beta() - b.beta()).abs() < 1e-12);
    }

    #[test]
    fn uniform_rejects_non_dividing_count() {
        assert!(BeaconSeq::uniform(3, Tick(100), Tick(1), Tick::ZERO).is_err());
    }

    #[test]
    fn gaps_sum_to_period() {
        let b = BeaconSeq::new(vec![Tick(5), Tick(20), Tick(90)], Tick(120), Tick(2)).unwrap();
        let gaps = b.gaps();
        assert_eq!(gaps, vec![Tick(15), Tick(70), Tick(35)]);
        assert_eq!(gaps.into_iter().sum::<Tick>(), b.period());
        assert_eq!(b.max_gap(), Tick(70));
    }

    #[test]
    fn instants_and_relative_instants() {
        let b = BeaconSeq::new(vec![Tick(10), Tick(60)], Tick(100), Tick(2)).unwrap();
        assert_eq!(
            b.instants_in(Tick(0), Tick(250)),
            vec![Tick(10), Tick(60), Tick(110), Tick(160), Tick(210)]
        );
        assert_eq!(
            b.relative_instants(4),
            vec![Tick(0), Tick(50), Tick(100), Tick(150)]
        );
        // from mid-stream
        assert_eq!(
            b.instants_in(Tick(60), Tick(161)),
            vec![Tick(60), Tick(110), Tick(160)]
        );
    }

    #[test]
    fn schedule_duty_cycle() {
        let b = BeaconSeq::uniform(2, Tick::from_micros(100), Tick::from_micros(4), Tick::ZERO)
            .unwrap();
        let c = simple_windows();
        let s = Schedule::full(b, c);
        let dc = s.duty_cycle();
        assert!((dc.beta - 0.08).abs() < 1e-12);
        assert!((dc.gamma - 0.2).abs() < 1e-12);
        assert!((s.eta(1.0) - 0.28).abs() < 1e-12);
        // tx-only / rx-only
        let s = Schedule::tx_only(
            BeaconSeq::uniform(1, Tick::from_micros(100), Tick::from_micros(4), Tick::ZERO)
                .unwrap(),
        );
        assert_eq!(s.duty_cycle().gamma, 0.0);
    }

    #[test]
    fn self_blocking_counts_overlaps() {
        // beacon at 32 µs (ω = 4 µs) lands inside the window [30,40) µs
        let b = BeaconSeq::new(
            vec![Tick::from_micros(32)],
            Tick::from_micros(100),
            Tick::from_micros(4),
        )
        .unwrap();
        let s = Schedule::full(b, simple_windows());
        // ideal radio: exactly the 4 µs of airtime are blanked out of 20 µs
        let f = s.self_blocking_fraction(Tick::ZERO);
        assert!((f - 4.0 / 20.0).abs() < 1e-12);
        // with a guard the blanked time grows
        let f2 = s.self_blocking_fraction(Tick::from_micros(2));
        assert!(f2 > f);
    }

    #[test]
    fn gcd_lcm() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(lcm(7, 13), 91);
    }
}
