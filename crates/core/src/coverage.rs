//! Coverage maps (Section 4 of the paper).
//!
//! A coverage map answers, for every possible initial offset
//! `Φ₁ ∈ [0, T_C)` of the first in-range beacon against the reception
//! sequence `C∞`: *which* beacon of the sequence `B'` (if any) is the first
//! to land in a reception window, and after how much time. From it we obtain
//!
//! * **determinism** (Definition 4.1) — every offset is covered,
//! * **redundancy / disjointness** (Definition 4.2) — whether some offset is
//!   covered by more than one beacon,
//! * **coverage Λ** (Definition 4.3) and the per-beacon coverage of
//!   Theorem 4.2,
//! * the **packet-to-packet latency** `l*(Φ₁)` and its exact worst case and
//!   distribution over a uniformly random offset.

use crate::interval::{Interval, IntervalSet};
use crate::schedule::ReceptionWindows;
use crate::time::Tick;

/// How a beacon transmission interacts with a reception window.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum OverlapModel {
    /// The paper's default simplification (§3.2): a beacon is received iff
    /// its *start instant* falls inside a reception window; the packet
    /// airtime is otherwise neglected.
    #[default]
    Start,
    /// Optimistic: *any* overlap of the packet `[s, s+ω)` with a window
    /// counts as a reception.
    AnyOverlap,
    /// Realistic (Appendix A.3): the packet must be contained entirely in
    /// the window, i.e. transmissions starting within the last ω time units
    /// of a window are lost.
    FullPacket,
}

impl OverlapModel {
    /// The set of *beacon start offsets within one period* that lead to a
    /// reception, for the given windows and packet airtime.
    ///
    /// This is the set `Ω₁` of Section 4.1 (the un-shifted coverage image).
    pub fn reception_offsets(self, windows: &ReceptionWindows, omega: Tick) -> IntervalSet {
        let period = windows.period();
        let mut parts: Vec<IntervalSet> = Vec::with_capacity(windows.n_windows());
        for w in windows.windows() {
            let set = match self {
                OverlapModel::Start => IntervalSet::single(w.t, w.end()),
                OverlapModel::AnyOverlap => {
                    // s + ω > t  and  s < t + d  ⇒  s ∈ [t-ω+1, t+d) on the
                    // integer grid; build unwrapped then wrap mod period.
                    let len = w.d + omega - Tick(1);
                    let start_shift = w.t.as_nanos() as i128 - (omega.as_nanos() as i128 - 1);
                    IntervalSet::single(Tick::ZERO, len).shift_mod(start_shift, period)
                }
                OverlapModel::FullPacket => {
                    // s ≥ t and s + ω ≤ t + d ⇒ s ∈ [t, t+d-ω] (empty if d < ω)
                    match (w.d + Tick(1)).checked_sub(omega) {
                        Some(len) => IntervalSet::single(w.t, w.t + len)
                            .intersect(&IntervalSet::single(Tick::ZERO, period)),
                        None => IntervalSet::empty(),
                    }
                }
            };
            parts.push(set);
        }
        parts
            .into_iter()
            .fold(IntervalSet::empty(), |acc, s| acc.union(&s))
    }
}

/// One row of a coverage map: the offsets `Ω_i` covered by beacon `i`
/// together with that beacon's delay `τ_i − τ_1` (which is the
/// packet-to-packet latency `l*` if this beacon is the first hit).
#[derive(Clone, Debug)]
pub struct CoverageEntry {
    /// Index of the beacon within `B'` (0-based; the paper's `b_{i+1}`).
    pub beacon: usize,
    /// Delay of this beacon after the first one: `τ_i − τ_1`.
    pub delay: Tick,
    /// The covered initial offsets `Ω_i ⊆ [0, T_C)` (Eq. 3, reduced mod
    /// `T_C` as justified by Lemma 4.1).
    pub offsets: IntervalSet,
}

/// The coverage map of a beacon sequence `B'` against a reception sequence
/// `C∞` (Section 4.1.1, Figure 3).
#[derive(Clone, Debug)]
pub struct CoverageMap {
    period: Tick,
    sum_d: Tick,
    entries: Vec<CoverageEntry>,
}

impl CoverageMap {
    /// Build the coverage map for beacons at relative instants
    /// `rel_times[i] = τ_{i+1} − τ_1` (the first entry must be 0) against
    /// the periodic reception windows, under the given overlap model.
    pub fn build(
        rel_times: &[Tick],
        windows: &ReceptionWindows,
        omega: Tick,
        model: OverlapModel,
    ) -> Self {
        assert!(!rel_times.is_empty(), "need at least one beacon");
        assert!(rel_times[0].is_zero(), "relative times must start at 0");
        let period = windows.period();
        let base = model.reception_offsets(windows, omega);
        let entries = rel_times
            .iter()
            .enumerate()
            .map(|(i, &r)| CoverageEntry {
                beacon: i,
                delay: r,
                // Ω_i = Ω₁ − (τ_i − τ_1)  (mod T_C): Eq. 3
                offsets: base.shift_mod(-(r.as_nanos() as i128), period),
            })
            .collect();
        CoverageMap {
            period,
            sum_d: base.measure(),
            entries,
        }
    }

    /// The reception period `T_C`.
    pub fn period(&self) -> Tick {
        self.period
    }

    /// The rows of the map, in beacon order.
    pub fn entries(&self) -> &[CoverageEntry] {
        &self.entries
    }

    /// Measure covered by a single beacon. Theorem 4.2: this equals `Σ d_k`
    /// for every beacon (under the `Start` model).
    pub fn per_beacon_coverage(&self) -> Tick {
        self.sum_d
    }

    /// The union of all covered offsets.
    pub fn covered(&self) -> IntervalSet {
        self.entries
            .iter()
            .fold(IntervalSet::empty(), |acc, e| acc.union(&e.offsets))
    }

    /// Total coverage Λ counting multiplicity (Definition 4.3).
    pub fn coverage(&self) -> Tick {
        self.entries.iter().map(|e| e.offsets.measure()).sum()
    }

    /// Definition 4.1: every initial offset in `[0, T_C)` is covered.
    pub fn is_deterministic(&self) -> bool {
        self.covered().covers(self.period)
    }

    /// Definition 4.2: no offset is covered by more than one beacon.
    pub fn is_disjoint(&self) -> bool {
        self.coverage() == self.covered().measure()
    }

    /// The offsets not covered by any beacon.
    pub fn uncovered(&self) -> IntervalSet {
        self.covered().complement(self.period)
    }

    /// The exact multiplicity map `Λ*(Φ₁)` (Definition 4.3): how many
    /// beacons cover each offset, as a piecewise-constant profile of
    /// contiguous segments tiling `[0, T_C)`.
    ///
    /// Appendix B's redundant schedules are verified with this: a Q-fold
    /// design must show `Λ* ≥ Q` everywhere within its L′ horizon.
    pub fn multiplicity_profile(&self) -> Vec<(Interval, u32)> {
        let mut events: Vec<(Tick, i32)> = Vec::new();
        for e in &self.entries {
            for iv in e.offsets.intervals() {
                events.push((iv.start, 1));
                events.push((iv.end, -1));
            }
        }
        events.sort();
        let mut out: Vec<(Interval, u32)> = Vec::new();
        let mut cursor = Tick::ZERO;
        let mut depth = 0i32;
        let mut i = 0;
        while i < events.len() {
            let pos = events[i].0;
            if pos > cursor {
                push_multiplicity(&mut out, Interval::new(cursor, pos), depth as u32);
                cursor = pos;
            }
            while i < events.len() && events[i].0 == pos {
                depth += events[i].1;
                i += 1;
            }
        }
        if cursor < self.period {
            push_multiplicity(&mut out, Interval::new(cursor, self.period), depth as u32);
        }
        out
    }

    /// The minimum multiplicity over `[0, T_C)` — the guaranteed
    /// redundancy degree `Q` of the sequence (0 if not deterministic).
    pub fn min_multiplicity(&self) -> u32 {
        self.multiplicity_profile()
            .iter()
            .map(|&(_, m)| m)
            .min()
            .unwrap_or(0)
    }

    /// Exact first-hit latency `l*(Φ₁)` for a single offset: the delay of
    /// the earliest beacon that covers `offset`, or `None` if no beacon
    /// does.
    pub fn first_hit(&self, offset: Tick) -> Option<Tick> {
        debug_assert!(offset < self.period);
        self.entries
            .iter()
            .find(|e| e.offsets.contains(offset))
            .map(|e| e.delay)
    }

    /// The exact piecewise-constant profile of `l*(Φ₁)` over `[0, T_C)`,
    /// computed with a sweep line over all interval endpoints.
    pub fn first_hit_profile(&self) -> FirstHitProfile {
        // Sweep events: at `pos`, a beacon's coverage with delay `d` starts
        // (+1) or ends (−1).
        #[derive(Clone, Copy)]
        struct Event {
            pos: Tick,
            delay: Tick,
            open: bool,
        }
        let mut events: Vec<Event> = Vec::new();
        for e in &self.entries {
            for iv in e.offsets.intervals() {
                events.push(Event {
                    pos: iv.start,
                    delay: e.delay,
                    open: true,
                });
                events.push(Event {
                    pos: iv.end,
                    delay: e.delay,
                    open: false,
                });
            }
        }
        events.sort_by_key(|e| e.pos);

        // Multiset of active delays.
        use std::collections::BTreeMap;
        let mut active: BTreeMap<Tick, usize> = BTreeMap::new();
        let mut segments: Vec<(Interval, Option<Tick>)> = Vec::new();
        let mut cursor = Tick::ZERO;
        let mut i = 0;
        while i < events.len() {
            let pos = events[i].pos;
            if pos > cursor {
                let value = active.keys().next().copied();
                push_segment(&mut segments, Interval::new(cursor, pos), value);
                cursor = pos;
            }
            while i < events.len() && events[i].pos == pos {
                let ev = events[i];
                if ev.open {
                    *active.entry(ev.delay).or_insert(0) += 1;
                } else {
                    match active.get_mut(&ev.delay) {
                        Some(n) if *n > 1 => *n -= 1,
                        Some(_) => {
                            active.remove(&ev.delay);
                        }
                        None => unreachable!("close without open"),
                    }
                }
                i += 1;
            }
        }
        if cursor < self.period {
            let value = active.keys().next().copied();
            push_segment(&mut segments, Interval::new(cursor, self.period), value);
        }
        FirstHitProfile {
            period: self.period,
            segments,
        }
    }

    /// Render the map as ASCII art in the style of Figure 3b of the paper:
    /// one row per beacon, `█` where the offset is covered, the final rows
    /// showing the union and multiplicity.
    pub fn render_ascii(&self, width: usize) -> String {
        use std::fmt::Write as _;
        assert!(width >= 8, "width too small");
        let scale = |t: Tick| -> usize {
            ((t.as_nanos() as u128 * width as u128) / self.period.as_nanos() as u128) as usize
        };
        let mut out = String::new();
        for e in &self.entries {
            let mut row = vec![b' '; width];
            for iv in e.offsets.intervals() {
                let a = scale(iv.start);
                let b = scale(iv.end).max(a + 1).min(width);
                for c in row.iter_mut().take(b).skip(a) {
                    *c = b'#';
                }
            }
            let _ = writeln!(
                out,
                "O{:<3} |{}| delay {}",
                e.beacon + 1,
                String::from_utf8(row).unwrap(),
                e.delay
            );
        }
        let covered = self.covered();
        let mut row = vec![b'.'; width];
        for iv in covered.intervals() {
            let a = scale(iv.start);
            let b = scale(iv.end).max(a + 1).min(width);
            for c in row.iter_mut().take(b).skip(a) {
                *c = b'#';
            }
        }
        let _ = writeln!(
            out,
            "all  |{}| coverage {} / {}{}",
            String::from_utf8(row).unwrap(),
            self.coverage(),
            self.period,
            if self.is_deterministic() {
                " (deterministic)"
            } else {
                " (NOT deterministic)"
            }
        );
        out
    }
}

fn push_multiplicity(segments: &mut Vec<(Interval, u32)>, iv: Interval, depth: u32) {
    if iv.is_empty() {
        return;
    }
    if let Some((last, d)) = segments.last_mut() {
        if *d == depth && last.end == iv.start {
            last.end = iv.end;
            return;
        }
    }
    segments.push((iv, depth));
}

fn push_segment(segments: &mut Vec<(Interval, Option<Tick>)>, iv: Interval, value: Option<Tick>) {
    if iv.is_empty() {
        return;
    }
    if let Some((last, v)) = segments.last_mut() {
        if *v == value && last.end == iv.start {
            last.end = iv.end;
            return;
        }
    }
    segments.push((iv, value));
}

/// The exact first-hit latency profile `Φ₁ ↦ l*(Φ₁)` as a piecewise-constant
/// function on `[0, T_C)`.
#[derive(Clone, Debug)]
pub struct FirstHitProfile {
    period: Tick,
    segments: Vec<(Interval, Option<Tick>)>,
}

impl FirstHitProfile {
    /// The constant segments: `(offset interval, l*)`; `None` means the
    /// offsets in the interval are never discovered.
    pub fn segments(&self) -> &[(Interval, Option<Tick>)] {
        &self.segments
    }

    /// The reception period `T_C` (the profile's domain is `[0, T_C)`).
    pub fn period(&self) -> Tick {
        self.period
    }

    /// Worst-case packet-to-packet latency `l*` over all offsets, or `None`
    /// if some offset is never covered (non-deterministic sequence).
    pub fn worst(&self) -> Option<Tick> {
        let mut worst = Tick::ZERO;
        for (_, v) in &self.segments {
            match v {
                None => return None,
                Some(d) => worst = worst.max(*d),
            }
        }
        Some(worst)
    }

    /// Total measure of offsets that are never discovered.
    pub fn uncovered_measure(&self) -> Tick {
        self.segments
            .iter()
            .filter(|(_, v)| v.is_none())
            .map(|(iv, _)| iv.measure())
            .sum()
    }

    /// The exact distribution of `l*` over a uniformly random offset:
    /// sorted `(latency, probability)` pairs. Undiscovered mass is excluded
    /// (check [`FirstHitProfile::uncovered_measure`]).
    pub fn distribution(&self) -> Vec<(Tick, f64)> {
        use std::collections::BTreeMap;
        let mut mass: BTreeMap<Tick, u64> = BTreeMap::new();
        for (iv, v) in &self.segments {
            if let Some(d) = v {
                *mass.entry(*d).or_insert(0) += iv.measure().as_nanos();
            }
        }
        let total = self.period.as_nanos() as f64;
        mass.into_iter()
            .map(|(d, m)| (d, m as f64 / total))
            .collect()
    }

    /// Mean of `l*` over a uniformly random offset, counting undiscovered
    /// offsets as `None` (returns `None` if any offset is undiscovered).
    pub fn mean(&self) -> Option<f64> {
        if !self.uncovered_measure().is_zero() {
            return None;
        }
        let mut acc = 0.0;
        for (iv, v) in &self.segments {
            acc += iv.measure().as_nanos() as f64 * v.unwrap().as_secs_f64();
        }
        Some(acc / self.period.as_nanos() as f64)
    }
}

/// Theorem 4.3 (Beaconing Theorem): the minimum number of beacons any
/// deterministic sequence needs against windows with period `T_C` and total
/// per-period listening time `Σd`.
pub fn min_beacons(period: Tick, sum_d: Tick) -> u64 {
    period.div_ceil(sum_d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Window;

    fn windows_xy() -> ReceptionWindows {
        // Two unit windows X=[0,10), Y=[40,50) per T_C = 100 (ns scale for
        // test readability).
        ReceptionWindows::new(
            vec![
                Window::new(Tick(0), Tick(10)),
                Window::new(Tick(40), Tick(10)),
            ],
            Tick(100),
        )
        .unwrap()
    }

    #[test]
    fn reception_offsets_models() {
        let c = windows_xy();
        let omega = Tick(4);
        let start = OverlapModel::Start.reception_offsets(&c, omega);
        assert_eq!(start.measure(), Tick(20));
        assert!(start.contains(Tick(0)) && start.contains(Tick(9)) && !start.contains(Tick(10)));

        let any = OverlapModel::AnyOverlap.reception_offsets(&c, omega);
        // each window gains ω−1 = 3 ticks on the left: [97..100)∪[0,10) and [37,50)
        assert_eq!(any.measure(), Tick(26));
        assert!(any.contains(Tick(97)) && any.contains(Tick(37)));

        let full = OverlapModel::FullPacket.reception_offsets(&c, omega);
        // start must be ≤ d−ω = 6 → [0,7) and [40,47)
        assert_eq!(full.measure(), Tick(14));
        assert!(full.contains(Tick(6)) && !full.contains(Tick(7)));
    }

    #[test]
    fn full_packet_empty_when_window_too_short() {
        let c = ReceptionWindows::single(Tick(0), Tick(3), Tick(100)).unwrap();
        let set = OverlapModel::FullPacket.reception_offsets(&c, Tick(4));
        assert!(set.is_empty());
        // exactly fitting: d == ω → only s = t works
        let c = ReceptionWindows::single(Tick(5), Tick(4), Tick(100)).unwrap();
        let set = OverlapModel::FullPacket.reception_offsets(&c, Tick(4));
        assert_eq!(set.intervals(), &[Interval::new(Tick(5), Tick(6))]);
    }

    #[test]
    fn theorem_4_2_coverage_per_beacon_invariant() {
        // every beacon contributes exactly Σd of coverage regardless of its
        // delay (shifts preserve measure mod T_C)
        let c = windows_xy();
        let map = CoverageMap::build(
            &[Tick(0), Tick(33), Tick(61), Tick(97), Tick(155)],
            &c,
            Tick(4),
            OverlapModel::Start,
        );
        for e in map.entries() {
            assert_eq!(e.offsets.measure(), Tick(20), "beacon {}", e.beacon);
        }
        assert_eq!(map.coverage(), Tick(100));
    }

    #[test]
    fn deterministic_tiling_sequence() {
        // Σd = 20 per T_C = 100 → M = 5 (Thm 4.3). Beacons spaced by
        // λ = 120 = T_C + Σd/n ... simplest: gaps of 20 shift the two
        // windows left by 20 each time; 5 beacons tile [0,100) exactly.
        let c = ReceptionWindows::single(Tick(0), Tick(20), Tick(100)).unwrap();
        let rel: Vec<Tick> = (0..5).map(|i| Tick(i * 120)).collect(); // λ = 120 ≡ 20 (mod 100)
        let map = CoverageMap::build(&rel, &c, Tick(4), OverlapModel::Start);
        assert!(map.is_deterministic());
        assert!(map.is_disjoint());
        assert_eq!(min_beacons(c.period(), c.sum_d()), 5);
        // worst packet-to-packet latency = delay of the last beacon
        assert_eq!(map.first_hit_profile().worst(), Some(Tick(4 * 120)));
    }

    #[test]
    fn non_deterministic_when_gaps_resonate() {
        // gap = T_C: every beacon covers the same offsets → stuck at Σd
        let c = ReceptionWindows::single(Tick(0), Tick(20), Tick(100)).unwrap();
        let rel: Vec<Tick> = (0..10).map(|i| Tick(i * 100)).collect();
        let map = CoverageMap::build(&rel, &c, Tick(4), OverlapModel::Start);
        assert!(!map.is_deterministic());
        assert!(!map.is_disjoint());
        assert_eq!(map.covered().measure(), Tick(20));
        assert_eq!(map.uncovered().measure(), Tick(80));
        assert_eq!(map.first_hit_profile().worst(), None);
        assert_eq!(map.first_hit_profile().uncovered_measure(), Tick(80));
    }

    #[test]
    fn first_hit_prefers_earliest_beacon() {
        let c = windows_xy();
        // beacon 0 covers [0,10)∪[40,50); beacon 1 (delay 5) covers
        // [95,100)∪[0,5) ∪ [35,45)
        let map = CoverageMap::build(&[Tick(0), Tick(5)], &c, Tick(4), OverlapModel::Start);
        assert_eq!(map.first_hit(Tick(3)), Some(Tick(0))); // covered by both → earliest
        assert_eq!(map.first_hit(Tick(97)), Some(Tick(5)));
        assert_eq!(map.first_hit(Tick(37)), Some(Tick(5)));
        assert_eq!(map.first_hit(Tick(60)), None);
        assert!(!map.is_disjoint());
    }

    #[test]
    fn profile_matches_pointwise_first_hit() {
        let c = windows_xy();
        let map = CoverageMap::build(
            &[Tick(0), Tick(13), Tick(27), Tick(55), Tick(70), Tick(90)],
            &c,
            Tick(4),
            OverlapModel::Start,
        );
        let profile = map.first_hit_profile();
        // segments tile the whole period
        let total: Tick = profile.segments().iter().map(|(iv, _)| iv.measure()).sum();
        assert_eq!(total, Tick(100));
        // pointwise agreement on a fine grid
        for phi in 0..100 {
            let offset = Tick(phi);
            let seg_val = profile
                .segments()
                .iter()
                .find(|(iv, _)| iv.contains(offset))
                .unwrap()
                .1;
            assert_eq!(seg_val, map.first_hit(offset), "offset {offset}");
        }
    }

    #[test]
    fn distribution_sums_to_coverage_probability() {
        let c = ReceptionWindows::single(Tick(0), Tick(25), Tick(100)).unwrap();
        let rel: Vec<Tick> = (0..4).map(|i| Tick(i * 125)).collect(); // tiles in 4 steps
        let map = CoverageMap::build(&rel, &c, Tick(4), OverlapModel::Start);
        let profile = map.first_hit_profile();
        let dist = profile.distribution();
        let total_p: f64 = dist.iter().map(|(_, p)| p).sum();
        assert!((total_p - 1.0).abs() < 1e-12);
        assert_eq!(dist.len(), 4);
        for (i, (delay, p)) in dist.iter().enumerate() {
            assert_eq!(*delay, Tick(i as u64 * 125));
            assert!((p - 0.25).abs() < 1e-12);
        }
        let mean = profile.mean().unwrap();
        assert!((mean - (0.0 + 125.0 + 250.0 + 375.0) * 1e-9 / 4.0).abs() < 1e-15);
    }

    #[test]
    fn multiplicity_profile_counts_layers() {
        let c = ReceptionWindows::single(Tick(0), Tick(20), Tick(100)).unwrap();
        // two interleaved tilings: every offset covered exactly twice
        let mut rel: Vec<Tick> = (0..5).map(|i| Tick(i * 120)).collect();
        rel.extend((0..5).map(|i| Tick(600 + i * 120)));
        let map = CoverageMap::build(&rel, &c, Tick(4), OverlapModel::Start);
        assert!(map.is_deterministic());
        assert_eq!(map.min_multiplicity(), 2);
        let profile = map.multiplicity_profile();
        let total: Tick = profile.iter().map(|(iv, _)| iv.measure()).sum();
        assert_eq!(total, Tick(100), "profile tiles the period");
        assert!(profile.iter().all(|&(_, m)| m == 2));
    }

    #[test]
    fn multiplicity_zero_where_uncovered() {
        let c = ReceptionWindows::single(Tick(0), Tick(20), Tick(100)).unwrap();
        let map = CoverageMap::build(&[Tick(0)], &c, Tick(4), OverlapModel::Start);
        assert_eq!(map.min_multiplicity(), 0);
        let profile = map.multiplicity_profile();
        let covered: Tick = profile
            .iter()
            .filter(|&&(_, m)| m > 0)
            .map(|(iv, _)| iv.measure())
            .sum();
        assert_eq!(covered, Tick(20));
    }

    #[test]
    fn min_beacons_theorem_4_3() {
        assert_eq!(min_beacons(Tick(100), Tick(20)), 5);
        assert_eq!(min_beacons(Tick(100), Tick(30)), 4); // ⌈100/30⌉
        assert_eq!(min_beacons(Tick(100), Tick(100)), 1);
        assert_eq!(min_beacons(Tick(101), Tick(100)), 2);
    }

    #[test]
    fn ascii_rendering_smoke() {
        let c = windows_xy();
        let map = CoverageMap::build(&[Tick(0), Tick(30)], &c, Tick(4), OverlapModel::Start);
        let art = map.render_ascii(50);
        assert!(art.contains("O1"));
        assert!(art.contains("O2"));
        assert!(art.contains("NOT deterministic"));
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3);
    }
}
