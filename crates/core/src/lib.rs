//! # nd-core — the theory of *On Optimal Neighbor Discovery*
//!
//! This crate is a faithful, executable implementation of the theory in
//! Philipp H. Kindt and Samarjit Chakraborty, *On Optimal Neighbor
//! Discovery* (SIGCOMM 2019): the formal model of neighbor-discovery (ND)
//! protocols, the coverage-map machinery used to reason about deterministic
//! discovery, and every fundamental bound the paper derives.
//!
//! ## Map from paper to code
//!
//! | Paper | Module |
//! |---|---|
//! | Defs. 3.1–3.3 (sequences, protocols) | [`schedule`] |
//! | Def. 3.5 (duty cycles, α-weighting) | [`params`] |
//! | Section 4 (coverage maps, determinism, Theorems 4.2/4.3) | [`coverage`] |
//! | Section 5 (fundamental bounds) | [`bounds`] |
//! | Section 6 (slotted protocols, Table 1) | [`bounds::slotted`] |
//! | Appendix A (relaxed assumptions) | [`bounds::overheads`] |
//! | Appendix B (collision-robust redundancy) | [`bounds::redundancy`] |
//! | Appendix C (one-way discovery) | [`bounds::oneway`] |
//!
//! ## Example: bound → achievable schedule shape
//!
//! ```
//! use nd_core::bounds::{symmetric_bound, optimal_beta};
//! use nd_core::coverage::min_beacons;
//! use nd_core::time::Tick;
//!
//! // A pair of devices with a 5 % duty-cycle budget each, 36 µs beacons,
//! // equal TX/RX power (α = 1):
//! let (alpha, omega, eta) = (1.0, 36e-6, 0.05);
//! let bound = symmetric_bound(alpha, omega, eta); // = 57.6 ms
//! assert!((bound - 0.0576).abs() < 1e-9);
//!
//! // The optimal split transmits with β = η/2α and listens with γ = η/2
//! // (Theorem 5.5); with one reception window of 1 ms per T_C = 20 ms the
//! // Beaconing Theorem says 20 beacons per period are necessary:
//! assert_eq!(min_beacons(Tick::from_millis(20), Tick::from_millis(1)), 20);
//! assert!((optimal_beta(eta, alpha) - 0.025).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bounds;
pub mod coverage;
pub mod error;
pub mod interval;
pub mod params;
pub mod schedule;
pub mod seed;
pub mod stable;
pub mod time;

pub use coverage::{min_beacons, CoverageMap, FirstHitProfile, OverlapModel};
pub use error::NdError;
pub use interval::{Interval, IntervalSet};
pub use params::{DutyCycle, RadioParams};
pub use schedule::{BeaconSeq, ReceptionWindows, Schedule, Window};
pub use stable::StableEncode;
pub use time::Tick;
