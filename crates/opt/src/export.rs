//! Front exporters: CSV and JSON, deterministic byte for byte (stable
//! column order, sorted metric union, shortest-roundtrip floats) — the
//! same conventions as `nd-sweep`'s exporters, so downstream plotting
//! code can treat fronts as just another result table.

use crate::optimizer::OptOutcome;
use nd_sweep::export::EXPORT_SCHEMA;
use nd_sweep::value::Value;
use std::collections::{BTreeMap, BTreeSet};

const FIXED_COLUMNS: [&str; 10] = [
    "protocol",
    "eta",
    "slot_us",
    "eta_b",
    "slot_us_b",
    "duty_cycle",
    "duty_cycle_b",
    "latency_s",
    "bound_s",
    "gap_frac",
];

/// Render all fronts as one CSV table: fixed columns, then the sorted
/// union of backend metrics.
pub fn to_csv(outcome: &OptOutcome) -> String {
    let metric_names: BTreeSet<&str> = outcome
        .fronts
        .iter()
        .flat_map(|f| f.front.iter())
        .flat_map(|p| p.metrics.keys().map(|s| s.as_str()))
        .collect();

    let mut out = format!("# {EXPORT_SCHEMA}\n");
    for (i, name) in FIXED_COLUMNS.iter().chain(metric_names.iter()).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(name);
    }
    out.push('\n');

    for front in &outcome.fronts {
        for p in &front.front {
            out.push_str(&front.protocol);
            for v in [
                Some(p.eta),
                p.slot_us,
                p.eta_b,
                p.slot_us_b,
                Some(p.duty_cycle),
                p.duty_cycle_b,
                Some(p.latency_s),
                Some(p.bound_s),
                Some(p.gap_frac),
            ] {
                out.push(',');
                if let Some(x) = v {
                    out.push_str(&float_cell(x));
                }
            }
            for name in &metric_names {
                out.push(',');
                if let Some(x) = p.metrics.get(*name) {
                    out.push_str(&float_cell(*x));
                }
            }
            out.push('\n');
        }
    }
    out
}

/// Render the outcome as a self-describing JSON document.
pub fn to_json(outcome: &OptOutcome) -> String {
    let fronts: Vec<Value> = outcome
        .fronts
        .iter()
        .map(|f| {
            let points: Vec<Value> = f
                .front
                .iter()
                .map(|p| {
                    let mut t = BTreeMap::new();
                    t.insert("eta".to_string(), Value::Float(p.eta));
                    t.insert(
                        "slot_us".to_string(),
                        p.slot_us.map(Value::Float).unwrap_or(Value::Null),
                    );
                    t.insert(
                        "eta_b".to_string(),
                        p.eta_b.map(Value::Float).unwrap_or(Value::Null),
                    );
                    t.insert(
                        "slot_us_b".to_string(),
                        p.slot_us_b.map(Value::Float).unwrap_or(Value::Null),
                    );
                    t.insert("duty_cycle".to_string(), Value::Float(p.duty_cycle));
                    t.insert(
                        "duty_cycle_b".to_string(),
                        p.duty_cycle_b.map(Value::Float).unwrap_or(Value::Null),
                    );
                    t.insert("latency_s".to_string(), Value::Float(p.latency_s));
                    t.insert("bound_s".to_string(), Value::Float(p.bound_s));
                    t.insert("gap_frac".to_string(), Value::Float(p.gap_frac));
                    t.insert(
                        "metrics".to_string(),
                        Value::Table(
                            p.metrics
                                .iter()
                                .map(|(k, v)| (k.clone(), Value::Float(*v)))
                                .collect(),
                        ),
                    );
                    Value::Table(t)
                })
                .collect();
            let mut t = BTreeMap::new();
            t.insert("protocol".to_string(), Value::Str(f.protocol.clone()));
            t.insert("front".to_string(), Value::Array(points));
            t.insert("evaluated".to_string(), Value::Int(f.evaluated as i64));
            t.insert("executed".to_string(), Value::Int(f.executed as i64));
            t.insert("cache_hits".to_string(), Value::Int(f.cache_hits as i64));
            t.insert("errors".to_string(), Value::Int(f.errors as i64));
            t.insert(
                "censored".to_string(),
                Value::Table(
                    f.censored
                        .iter()
                        .map(|(k, v)| (k.to_string(), Value::Int(*v as i64)))
                        .collect(),
                ),
            );
            Value::Table(t)
        })
        .collect();

    let mut doc = BTreeMap::new();
    doc.insert("schema".to_string(), Value::Str(EXPORT_SCHEMA.to_string()));
    doc.insert("name".to_string(), Value::Str(outcome.name.clone()));
    doc.insert(
        "spec_hash".to_string(),
        Value::Str(outcome.spec_hash.clone()),
    );
    doc.insert("backend".to_string(), Value::Str(outcome.backend.clone()));
    doc.insert(
        "objective".to_string(),
        Value::Str(outcome.objective.clone()),
    );
    doc.insert(
        "latency_metric".to_string(),
        Value::Str(outcome.latency_metric.clone()),
    );
    doc.insert("fronts".to_string(), Value::Array(fronts));
    Value::Table(doc).to_json_pretty()
}

fn float_cell(f: f64) -> String {
    if f.is_nan() {
        "NaN".to_string()
    } else {
        format!("{f}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::{run_opt, OptOptions};
    use crate::spec::OptSpec;
    use nd_sweep::value::parse_json;

    fn outcome() -> OptOutcome {
        let s = OptSpec::from_toml_str(
            "name = \"exp\"\nbackend = \"exact\"\nmetric = \"two-way\"\n\
             [opt]\nprotocols = [\"optimal\"]\nseeds_per_axis = 3\nrounds = 1\n",
        )
        .unwrap();
        run_opt(&s, &OptOptions::uncached()).unwrap()
    }

    #[test]
    fn csv_is_deterministic_with_fixed_prefix() {
        let out = outcome();
        let csv = to_csv(&out);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "# nd-export/v1");
        assert!(lines[1].starts_with(
            "protocol,eta,slot_us,eta_b,slot_us_b,duty_cycle,duty_cycle_b,latency_s,bound_s,gap_frac"
        ));
        assert_eq!(
            lines.len(),
            2 + out.fronts.iter().map(|f| f.front.len()).sum::<usize>()
        );
        assert_eq!(csv, to_csv(&out), "byte-identical re-render");
        // slotless protocol: slot_us column empty
        assert!(lines[2].starts_with("optimal-slotless,"));
    }

    #[test]
    fn json_is_valid_and_complete() {
        let out = outcome();
        let doc = parse_json(&to_json(&out)).unwrap();
        let t = doc.as_table().unwrap();
        assert_eq!(t["schema"].as_str(), Some(EXPORT_SCHEMA));
        assert_eq!(t["name"].as_str(), Some("exp"));
        assert_eq!(t["backend"].as_str(), Some("exact"));
        let fronts = t["fronts"].as_array().unwrap();
        assert_eq!(fronts.len(), 1);
        let f0 = fronts[0].as_table().unwrap();
        assert_eq!(f0["protocol"].as_str(), Some("optimal-slotless"));
        assert!(!f0["front"].as_array().unwrap().is_empty());
    }
}
