//! The `nd-opt` CLI: compute Pareto fronts of discovery schedules from
//! the shell.
//!
//! ```text
//! nd-opt front (--spec <opt.toml> | --protocol NAME [...]) [OPTIONS]
//! nd-opt best --budget <dc> (--spec … | --protocol …) [OPTIONS]
//! nd-opt gap (--spec … | --protocol …) [OPTIONS]
//! ```

use nd_opt::{run_opt, Objective, OptOptions, OptOutcome, OptSpec};
use nd_sweep::spec::{Backend, Metric};
use nd_sweep::{ScenarioSpec, ENGINE_VERSION};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    if let Err(e) = nd_obs::trace::init_from_env() {
        eprintln!("nd-opt: cannot open $ND_TRACE: {e}");
        return ExitCode::FAILURE;
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("front") => cmd_front(&args[1..]),
        Some("best") => cmd_best(&args[1..]),
        Some("gap") => cmd_gap(&args[1..]),
        Some("--version" | "-V" | "version") => {
            println!(
                "nd-opt {} (engine {ENGINE_VERSION})",
                env!("CARGO_PKG_VERSION")
            );
            ExitCode::SUCCESS
        }
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n{USAGE}");
            ExitCode::FAILURE
        }
    };
    nd_obs::trace::shutdown(); // flush any --trace-out / ND_TRACE sink
    code
}

const USAGE: &str = "\
nd-opt — Pareto-front optimizer for neighbor-discovery schedules

Per protocol, searches the declarative parameter space (duty cycle, slot
length) for the non-dominated trade-offs between duty cycle and
discovery latency, and reports each front point's gap to the paper's
closed-form optimality bound. Evaluations run in parallel and are cached
content-addressed (shared with nd-sweep).

USAGE:
    nd-opt front (--spec <opt.toml|json> | --protocol NAME) [OPTIONS]
                 compute fronts, write <name>.csv/.json, print a summary
    nd-opt best --budget <dc> (--spec … | --protocol …) [OPTIONS]
                 the best configuration within a duty-cycle budget
    nd-opt gap  (--spec … | --protocol …) [OPTIONS]
                 per-protocol distance-to-optimality summary
    nd-opt --version   print version + engine/cache ABI, then exit
    nd-opt --help      print this help, then exit

SEARCH (ad-hoc with --protocol, or overriding a --spec file):
    --protocol NAME    registry name or `optimal` (repeatable)
    --backend B        exact | montecarlo | netsim (default: exact)
    --metric M         one-way | two-way | either-way (default: two-way)
    --objective O      worst | p95 | p99 (default: worst)
    --pair             asymmetric search: both roles' (eta, slot) searched
                       independently, front over the total budget
                       η_E + η_F, gap vs. the Theorem 5.7 bound
                       (two-way metric only)
    --seeds N          seeding-grid values per axis (default: 6)
    --rounds N         refinement rounds (default: 2)
    --max-evals N      per-protocol evaluation budget (default: 256)
    --nodes N          cohort size (netsim backend only)
    --eta-min F        restrict the duty-cycle search range from below
                       (both roles, with --pair)
    --eta-max F        restrict the duty-cycle search range from above
    --adaptive         adaptive trial allocation (montecarlo/netsim
                       backends; a no-op on exact): screen every new
                       candidate at a reduced trial budget and promote
                       only those whose domination the screening results
                       cannot settle — same front, fewer trials
    --screen-trials N  trials per screening evaluation (implies
                       --adaptive; default: max(2, trials/8))

OPTIONS:
    --out-dir DIR      write <name>.csv/.json here (default: ., front only)
    --format FMT       csv | json | both (default: both)
    --threads N        worker threads (default: all cores)
    --no-cache         skip the content-addressed result cache
    --cache-dir DIR    cache location (default: $ND_SWEEP_CACHE or
                       target/nd-sweep-cache)
    --quiet            suppress per-point detail

OBSERVABILITY:
    --stats            append a deterministic JSON metrics snapshot
                       (opt.evals, opt.cache_hits, censor reasons — total,
                       per round and at the screening budget, adaptive
                       screened/promoted/early-stop counts, pool latency,
                       …) to stdout, preceded by a per-round censoring
                       breakdown per protocol
    --trace-out PATH   write a JSONL span trace of the whole search
                       (overrides $ND_TRACE; see the README's
                       Observability section for the line schema)

EXIT STATUS:
    0 on success; non-zero on an invalid spec, an empty front (with a
    censoring-count diagnostic explaining why nothing survived), or
    (best) no front point within the budget.
";

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("nd-opt: {msg}");
    ExitCode::FAILURE
}

/// Everything both spec sources and all three subcommands share.
struct Cli {
    spec: OptSpec,
    opts: OptOptions,
    out_dir: PathBuf,
    format: String,
    quiet: bool,
    budget: Option<f64>,
    stats: bool,
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut spec_path: Option<PathBuf> = None;
    let mut protocols: Vec<String> = Vec::new();
    let mut backend: Option<Backend> = None;
    let mut metric: Option<Metric> = None;
    let mut objective: Option<Objective> = None;
    let mut seeds: Option<usize> = None;
    let mut rounds: Option<usize> = None;
    let mut max_evals: Option<usize> = None;
    let mut nodes: Option<u32> = None;
    let mut pair = false;
    let mut adaptive = false;
    let mut screen_trials: Option<usize> = None;
    let mut eta_min: Option<f64> = None;
    let mut eta_max: Option<f64> = None;
    let mut opts = OptOptions::default();
    let mut out_dir = PathBuf::from(".");
    let mut format = "both".to_string();
    let mut quiet = false;
    let mut budget = None;
    let mut stats = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{what} needs a value"))
        };
        match arg.as_str() {
            "--spec" => spec_path = Some(PathBuf::from(value("--spec")?)),
            "--protocol" => protocols.push(value("--protocol")?.to_string()),
            "--backend" => {
                backend = Some(match value("--backend")? {
                    "exact" => Backend::Exact,
                    "montecarlo" => Backend::MonteCarlo,
                    "netsim" => Backend::Netsim,
                    other => return Err(format!("unknown backend `{other}`")),
                })
            }
            "--metric" => {
                metric = Some(match value("--metric")? {
                    "one-way" => Metric::OneWay,
                    "two-way" => Metric::TwoWay,
                    "either-way" => Metric::EitherWay,
                    other => return Err(format!("unknown metric `{other}`")),
                })
            }
            "--objective" => {
                objective =
                    Some(Objective::parse(value("--objective")?).map_err(|e| e.to_string())?)
            }
            "--seeds" => seeds = Some(parse_pos(value("--seeds")?, "--seeds")?),
            "--rounds" => rounds = Some(parse_pos(value("--rounds")?, "--rounds")?),
            "--max-evals" => max_evals = Some(parse_pos(value("--max-evals")?, "--max-evals")?),
            "--nodes" => nodes = Some(parse_pos(value("--nodes")?, "--nodes")? as u32),
            "--pair" => pair = true,
            "--adaptive" => adaptive = true,
            "--screen-trials" => {
                screen_trials = Some(parse_pos(value("--screen-trials")?, "--screen-trials")?)
            }
            "--eta-min" => eta_min = Some(parse_unit(value("--eta-min")?, "--eta-min")?),
            "--eta-max" => eta_max = Some(parse_unit(value("--eta-max")?, "--eta-max")?),
            "--budget" => {
                budget = Some(
                    value("--budget")?
                        .parse::<f64>()
                        .ok()
                        .filter(|b| *b > 0.0 && *b <= 1.0)
                        .ok_or("--budget needs a duty cycle in (0, 1]")?,
                )
            }
            "--out-dir" => out_dir = PathBuf::from(value("--out-dir")?),
            "--format" => match value("--format")? {
                f @ ("csv" | "json" | "both") => format = f.to_string(),
                _ => return Err("--format needs csv|json|both".into()),
            },
            "--threads" => opts.threads = Some(parse_pos(value("--threads")?, "--threads")?),
            "--no-cache" => opts.use_cache = false,
            "--cache-dir" => opts.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--quiet" => quiet = true,
            "--stats" => stats = true,
            "--trace-out" => nd_obs::trace::init_file(std::path::Path::new(value("--trace-out")?))
                .map_err(|e| format!("--trace-out: {e}"))?,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }

    let mut spec = match (spec_path, protocols.is_empty()) {
        (Some(path), true) => OptSpec::from_file(&path).map_err(|e| e.to_string())?,
        (None, false) => {
            let base = ScenarioSpec {
                backend: backend.unwrap_or(Backend::Exact),
                metric: metric.unwrap_or(Metric::TwoWay),
                ..ScenarioSpec::from_toml_str("name = \"adhoc\"").expect("minimal spec parses")
            };
            OptSpec::new(base, &protocols, objective.unwrap_or(Objective::Worst))
                .map_err(|e| e.to_string())?
        }
        (Some(_), false) => return Err("--spec and --protocol are mutually exclusive".into()),
        (None, true) => return Err("need --spec <file> or --protocol NAME".into()),
    };
    // every flag overrides its spec-file counterpart, so a spec invocation
    // and an ad-hoc one behave identically
    if let Some(b) = backend {
        spec.base.backend = b;
    }
    if let Some(m) = metric {
        spec.base.metric = m;
    }
    if let Some(o) = objective {
        spec.objective = o;
    }
    if let Some(s) = seeds {
        spec.seeds_per_axis = s;
    }
    if let Some(r) = rounds {
        spec.rounds = r;
    }
    if let Some(m) = max_evals {
        spec.max_evals = m;
    }
    if let Some(n) = nodes {
        spec.nodes = n;
    }
    if pair {
        spec.pair = true;
    }
    if adaptive || screen_trials.is_some() {
        spec.adaptive.enabled = true;
    }
    if screen_trials.is_some() {
        spec.adaptive.screen_trials = screen_trials;
    }
    if eta_min.is_some() || eta_max.is_some() {
        // one-sided restrictions leave the other bound open (the protocol
        // space's own limits clamp it)
        spec.eta_range = Some((eta_min.unwrap_or(f64::MIN_POSITIVE), eta_max.unwrap_or(1.0)));
    }
    spec.validate().map_err(|e| e.to_string())?;

    if stats {
        // the registry must be collecting before the search runs
        nd_obs::metrics::set_enabled(true);
    }

    Ok(Cli {
        spec,
        opts,
        out_dir,
        format,
        quiet,
        budget,
        stats,
    })
}

fn parse_pos(s: &str, what: &str) -> Result<usize, String> {
    s.parse::<usize>()
        .ok()
        .filter(|n| *n > 0)
        .ok_or_else(|| format!("{what} needs a positive integer"))
}

fn parse_unit(s: &str, what: &str) -> Result<f64, String> {
    s.parse::<f64>()
        .ok()
        .filter(|x| *x > 0.0 && *x <= 1.0)
        .ok_or_else(|| format!("{what} needs a duty cycle in (0, 1]"))
}

fn run(cli: &Cli) -> Result<OptOutcome, String> {
    run_opt(&cli.spec, &cli.opts).map_err(|e| e.to_string())
}

fn summary(outcome: &OptOutcome) {
    for f in &outcome.fronts {
        let gaps: Vec<f64> = f.front.iter().map(|p| p.gap_frac).collect();
        let max_gap = gaps.iter().copied().fold(f64::NAN, f64::max);
        println!(
            "  {}: {} front points ({} evaluated, {} executed, {} cached, {} errors), max gap {}",
            f.protocol,
            f.front.len(),
            f.evaluated,
            f.executed,
            f.cache_hits,
            f.errors,
            percent(max_gap),
        );
        if f.screened > 0 {
            println!(
                "      adaptive: {} screened, {} promoted, {} early-stopped",
                f.screened, f.promoted, f.early_stops,
            );
        }
    }
    println!(
        "{}: {} protocols, {} executed, {} cached in {:.2?}  [spec {}, backend {}, objective {} → {}]",
        outcome.name,
        outcome.fronts.len(),
        outcome.executed,
        outcome.cache_hits,
        outcome.wall,
        &outcome.spec_hash[..12],
        outcome.backend,
        outcome.objective,
        outcome.latency_metric,
    );
}

/// The `--stats` per-round censoring breakdown: *when* a candidate was
/// censored matters for debugging adaptive runs (screening censors
/// construction errors in round 0 aggressively), not just the totals.
fn stats_detail(outcome: &OptOutcome) {
    for f in &outcome.fronts {
        for (round, reasons) in f.censored_rounds.iter().enumerate() {
            if reasons.is_empty() {
                continue;
            }
            let detail = reasons
                .iter()
                .map(|(reason, count)| format!("{count} {reason}"))
                .collect::<Vec<_>>()
                .join(", ");
            println!("  {}: round {round}: censored {detail}", f.protocol);
        }
    }
}

fn percent(x: f64) -> String {
    if x.is_nan() {
        "n/a".to_string()
    } else {
        format!("{:.2}%", x * 100.0)
    }
}

/// When any protocol's front came back empty, explain *why* — the
/// censoring counts per reason — on stderr and return the failure exit
/// code; an empty table with no diagnosis is useless.
fn check_empty_fronts(outcome: &OptOutcome) -> Option<ExitCode> {
    let empty: Vec<_> = outcome
        .fronts
        .iter()
        .filter(|f| f.front.is_empty())
        .collect();
    if empty.is_empty() {
        return None;
    }
    for f in &empty {
        let reasons = if f.censored.is_empty() {
            "no candidates evaluated (empty feasible seed grid?)".to_string()
        } else {
            f.censored
                .iter()
                .map(|(reason, count)| format!("{count} {reason}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        eprintln!(
            "nd-opt: {}: empty front — {} candidate(s) evaluated, {} censored ({reasons})",
            f.protocol, f.evaluated, f.errors,
        );
        if f.censored.contains_key("undiscovered-offsets") {
            eprintln!(
                "nd-opt: {}: slotted worst-case fronts are censored by design \
                 (ω/slot of the offsets are never covered) — use a percentile \
                 objective (p95/p99), or eta_min to skip the degenerate corner",
                f.protocol,
            );
        }
    }
    Some(fail(format!(
        "{} of {} protocol(s) produced an empty front",
        empty.len(),
        outcome.fronts.len(),
    )))
}

fn cmd_front(args: &[String]) -> ExitCode {
    let cli = match parse_cli(args) {
        Ok(c) => c,
        Err(e) => return fail(e),
    };
    if cli.budget.is_some() {
        return fail("--budget only applies to `best`");
    }
    let outcome = match run(&cli) {
        Ok(o) => o,
        Err(e) => return fail(e),
    };

    if std::fs::create_dir_all(&cli.out_dir).is_err() {
        return fail(format!("cannot create {}", cli.out_dir.display()));
    }
    let stem = cli.out_dir.join(&outcome.name);
    if cli.format == "csv" || cli.format == "both" {
        let path = stem.with_extension("csv");
        if let Err(e) = std::fs::write(&path, nd_opt::to_csv(&outcome)) {
            return fail(format!("writing {}: {e}", path.display()));
        }
        if !cli.quiet {
            println!("wrote {}", path.display());
        }
    }
    if cli.format == "json" || cli.format == "both" {
        let path = stem.with_extension("json");
        if let Err(e) = std::fs::write(&path, nd_opt::to_json(&outcome)) {
            return fail(format!("writing {}: {e}", path.display()));
        }
        if !cli.quiet {
            println!("wrote {}", path.display());
        }
    }
    summary(&outcome);
    if cli.stats {
        stats_detail(&outcome);
        print!("{}", nd_obs::metrics::snapshot().to_json());
    }
    if let Some(code) = check_empty_fronts(&outcome) {
        return code;
    }
    ExitCode::SUCCESS
}

fn cmd_best(args: &[String]) -> ExitCode {
    let cli = match parse_cli(args) {
        Ok(c) => c,
        Err(e) => return fail(e),
    };
    let Some(budget) = cli.budget else {
        return fail("best needs --budget <duty cycle>");
    };
    let outcome = match run(&cli) {
        Ok(o) => o,
        Err(e) => return fail(e),
    };
    let mut found = false;
    for f in &outcome.fronts {
        // the front is sorted by duty cycle with latency decreasing, so
        // the best point within budget is the last affordable one
        match f.front.iter().rev().find(|p| p.duty_cycle <= budget) {
            Some(p) => {
                found = true;
                let slot = p
                    .slot_us
                    .map(|s| format!(" slot_us={s}"))
                    .unwrap_or_default();
                let role_b = match (p.eta_b, p.slot_us_b) {
                    (None, None) => String::new(),
                    (eta_b, slot_b) => format!(
                        " eta_b={}{}",
                        eta_b.unwrap_or(f64::NAN),
                        slot_b
                            .map(|s| format!(" slot_us_b={s}"))
                            .unwrap_or_default()
                    ),
                };
                println!(
                    "  {}: eta={}{}{} → duty_cycle={:.6} latency_s={} (bound_s={}, gap {})",
                    f.protocol,
                    p.eta,
                    slot,
                    role_b,
                    p.duty_cycle,
                    p.latency_s,
                    p.bound_s,
                    percent(p.gap_frac),
                );
            }
            None => println!("  {}: no front point within budget {budget}", f.protocol),
        }
    }
    summary(&outcome);
    if cli.stats {
        stats_detail(&outcome);
        print!("{}", nd_obs::metrics::snapshot().to_json());
    }
    if !found {
        return fail(format!("no configuration fits duty-cycle budget {budget}"));
    }
    ExitCode::SUCCESS
}

fn cmd_gap(args: &[String]) -> ExitCode {
    let cli = match parse_cli(args) {
        Ok(c) => c,
        Err(e) => return fail(e),
    };
    if cli.budget.is_some() {
        return fail("--budget only applies to `best`");
    }
    let outcome = match run(&cli) {
        Ok(o) => o,
        Err(e) => return fail(e),
    };
    for f in &outcome.fronts {
        if f.front.is_empty() {
            continue; // check_empty_fronts prints the diagnostic
        }
        let gaps: Vec<f64> = f.front.iter().map(|p| p.gap_frac).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let min = gaps.iter().copied().fold(f64::INFINITY, f64::min);
        let max = gaps.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "  {}: {} points, gap to optimal bound min {} / mean {} / max {}",
            f.protocol,
            f.front.len(),
            percent(min),
            percent(mean),
            percent(max),
        );
        if !cli.quiet {
            for p in &f.front {
                println!(
                    "      dc={:.6} latency_s={} bound_s={} gap={}",
                    p.duty_cycle,
                    p.latency_s,
                    p.bound_s,
                    percent(p.gap_frac)
                );
            }
        }
    }
    summary(&outcome);
    if cli.stats {
        stats_detail(&outcome);
        print!("{}", nd_obs::metrics::snapshot().to_json());
    }
    if let Some(code) = check_empty_fronts(&outcome) {
        return code;
    }
    ExitCode::SUCCESS
}
