//! Declarative optimization specs — the sweep grammar plus an `[opt]`
//! table.
//!
//! An opt spec is a TOML/JSON document in the same grammar as an
//! `nd-sweep` scenario spec (same `backend`, `metric`, `overlap`,
//! `[radio]` and `[sim]` tables, parsed by the same strict parser), with
//! one extra `[opt]` table describing the search instead of a `[grid]`
//! table describing fixed axes — the optimizer owns the parameter axes,
//! so a `[grid]` table is rejected:
//!
//! ```toml
//! name = "opt-pareto-ble"
//! backend = "exact"
//! metric = "two-way"
//!
//! [radio]
//! omega_us = 36
//!
//! [opt]
//! protocols = ["optimal", "disco", "u-connect"]
//! objective = "worst"        # worst | p95 | p99
//! seeds_per_axis = 6         # coarse seeding grid, per parameter
//! rounds = 2                 # adaptive refinement rounds
//! max_evals = 256            # hard evaluation budget per protocol
//! ```

use nd_protocols::ProtocolKind;
use nd_sweep::value::Value;
use nd_sweep::{Backend, Metric, ScenarioSpec, SpecError};
use std::collections::BTreeMap;

/// Which latency statistic the front minimizes (against the duty cycle).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Objective {
    /// The worst case: exact worst-case latency (exact evaluator) or the
    /// worst latency observed across trials (simulation evaluators).
    Worst,
    /// The 95th percentile of the latency distribution.
    P95,
    /// The 99th percentile of the latency distribution.
    P99,
}

impl Objective {
    /// Parse the spec spelling (`worst` | `p95` | `p99`).
    pub fn parse(s: &str) -> Result<Self, SpecError> {
        match s {
            "worst" => Ok(Objective::Worst),
            "p95" => Ok(Objective::P95),
            "p99" => Ok(Objective::P99),
            other => Err(SpecError(format!(
                "unknown objective `{other}` (expected worst|p95|p99)"
            ))),
        }
    }

    /// The spec spelling.
    pub fn name(&self) -> &'static str {
        match self {
            Objective::Worst => "worst",
            Objective::P95 => "p95",
            Objective::P99 => "p99",
        }
    }
}

/// Resolve a protocol selector the optimizer accepts: a registry name, or
/// the `optimal` shorthand for the paper-optimal slotless construction.
/// Parametrized selectors (`diff-code:…`) have no parameter space to
/// search and are rejected.
pub fn normalize_protocol(name: &str) -> Result<String, SpecError> {
    let resolved = match name {
        "optimal" => "optimal-slotless",
        other => other,
    };
    match ProtocolKind::from_name(resolved) {
        Some(k) => Ok(k.name().to_string()),
        None => {
            let known: Vec<&str> = ProtocolKind::all().iter().map(|k| k.name()).collect();
            Err(SpecError(format!(
                "unknown protocol `{name}` (registry: {}; or `optimal`)",
                known.join(", ")
            )))
        }
    }
}

/// Adaptive trial-allocation settings (the `[opt.adaptive]` table).
///
/// When enabled, the simulation evaluators (montecarlo/netsim) evaluate
/// every new candidate twice: once with a small screening trial count,
/// then — only for candidates whose domination is not statistically
/// settled — with the full `sim.trials` budget. Screening results come
/// from an independent partial-budget job universe (distinct content
/// hashes, distinct RNG streams; see `ScenarioSpec::with_trials`), so the
/// promotion decision is a pure function of content-hashed evaluation
/// results: cached and fresh runs, at any thread count, produce identical
/// fronts. The exact backend is deterministic at any trial count, so
/// screening is a structural no-op there.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdaptiveSpec {
    /// Master switch (default off: fixed-budget evaluation).
    pub enabled: bool,
    /// Trials for the screening pass. Defaults to `max(2, trials/8)`,
    /// clamped to the full budget.
    pub screen_trials: Option<usize>,
    /// Sequential-test strictness: a screened candidate is dropped as
    /// settled-dominated only if some co-screened candidate beats it on
    /// duty cycle and beats its latency by the relative margin
    /// `m = confidence / sqrt(screen_trials)` on *both* sides
    /// (`lat_other·(1+m) < lat_this·(1−m)`). Larger values promote more
    /// candidates to the full budget.
    pub confidence: f64,
}

impl Default for AdaptiveSpec {
    fn default() -> Self {
        AdaptiveSpec {
            enabled: false,
            screen_trials: None,
            confidence: 1.0,
        }
    }
}

impl AdaptiveSpec {
    /// The screening trial count for a given full budget.
    pub fn resolved_screen_trials(&self, full_trials: usize) -> usize {
        self.screen_trials
            .unwrap_or_else(|| (full_trials / 8).max(2))
            .min(full_trials)
            .max(1)
    }

    /// The relative domination margin of the sequential test at a given
    /// screening trial count.
    pub fn margin(&self, screen_trials: usize) -> f64 {
        self.confidence / (screen_trials as f64).sqrt()
    }
}

/// A complete, validated optimization spec.
#[derive(Clone, Debug, PartialEq)]
pub struct OptSpec {
    /// The sweep-grammar base: evaluation backend, discovery metric,
    /// overlap model, radio and simulation settings. Its `grid` is the
    /// default one and is not used for candidate generation.
    pub base: ScenarioSpec,
    /// The protocols to compute fronts for (registry names, normalized).
    pub protocols: Vec<String>,
    /// The latency statistic to minimize.
    pub objective: Objective,
    /// Seeding-grid resolution per parameter axis.
    pub seeds_per_axis: usize,
    /// Adaptive refinement rounds after the seeding round.
    pub rounds: usize,
    /// Hard per-protocol evaluation budget (seeding + refinement).
    pub max_evals: usize,
    /// Cohort size for the netsim evaluator.
    pub nodes: u32,
    /// Asymmetric-pair search: both roles' parameters are searched
    /// independently ([`nd_protocols::ParamSpace::paired`]), the front
    /// runs over the *total* budget η_E + η_F, and every point's gap is
    /// measured against the Theorem 5.7 asymmetric bound. Two-way metric
    /// only (that is the bound's metric).
    pub pair: bool,
    /// Optional restriction of the duty-cycle search range: the
    /// intersection of every protocol's declared `eta` range with
    /// `[eta_min, eta_max]`. Bounds the expensive low-η corner, or
    /// focuses the search on a target budget regime.
    pub eta_range: Option<(f64, f64)>,
    /// Adaptive trial allocation (screen cheaply, promote near-front
    /// survivors to the full budget).
    pub adaptive: AdaptiveSpec,
}

impl OptSpec {
    /// Build from an already-parsed base spec plus search settings,
    /// normalizing protocol names and validating.
    pub fn new(
        base: ScenarioSpec,
        protocols: &[String],
        objective: Objective,
    ) -> Result<Self, SpecError> {
        let spec = OptSpec {
            base,
            protocols: protocols
                .iter()
                .map(|p| normalize_protocol(p))
                .collect::<Result<_, _>>()?,
            objective,
            seeds_per_axis: 6,
            rounds: 2,
            max_evals: 256,
            nodes: 2,
            pair: false,
            eta_range: None,
            adaptive: AdaptiveSpec::default(),
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Parse a TOML opt spec.
    pub fn from_toml_str(input: &str) -> Result<Self, SpecError> {
        let v = nd_sweep::value::parse_toml(input).map_err(|e| SpecError(e.to_string()))?;
        Self::from_value(&v)
    }

    /// Parse a JSON opt spec.
    pub fn from_json_str(input: &str) -> Result<Self, SpecError> {
        let v = nd_sweep::value::parse_json(input).map_err(|e| SpecError(e.to_string()))?;
        Self::from_value(&v)
    }

    /// Load from a file, dispatching on the `.json` extension (anything
    /// else parses as TOML).
    pub fn from_file(path: &std::path::Path) -> Result<Self, SpecError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| SpecError(format!("cannot read {}: {e}", path.display())))?;
        if path.extension().is_some_and(|e| e == "json") {
            Self::from_json_str(&text)
        } else {
            Self::from_toml_str(&text)
        }
    }

    /// Build from a parsed [`Value`] tree: split off the `[opt]` table,
    /// delegate everything else to the sweep-spec parser.
    pub fn from_value(v: &Value) -> Result<Self, SpecError> {
        let top = v
            .as_table()
            .ok_or_else(|| SpecError("opt spec root must be a table".into()))?;
        if top.contains_key("grid") {
            return Err(SpecError(
                "opt specs take no [grid] table — the optimizer owns the parameter axes \
                 (use [opt] protocols = […] instead)"
                    .into(),
            ));
        }
        let opt_table = top
            .get("opt")
            .ok_or_else(|| SpecError("opt spec needs an [opt] table".into()))?
            .as_table()
            .ok_or_else(|| SpecError("`opt` must be a table".into()))?;

        let mut base_table: BTreeMap<String, Value> = top.clone();
        base_table.remove("opt");
        let base = ScenarioSpec::from_value(&Value::Table(base_table))?;

        for key in opt_table.keys() {
            if !matches!(
                key.as_str(),
                "protocols"
                    | "objective"
                    | "seeds_per_axis"
                    | "rounds"
                    | "max_evals"
                    | "nodes"
                    | "pair"
                    | "eta_min"
                    | "eta_max"
                    | "adaptive"
            ) {
                return Err(SpecError(format!(
                    "unknown key `{key}` in [opt] (allowed: protocols, objective, \
                     seeds_per_axis, rounds, max_evals, nodes, pair, eta_min, eta_max, adaptive)"
                )));
            }
        }

        let protocols: Vec<String> = match opt_table.get("protocols") {
            None => return Err(SpecError("[opt] needs `protocols = [...]`".into())),
            Some(v) => v
                .as_array()
                .ok_or_else(|| SpecError("`opt.protocols` must be an array".into()))?
                .iter()
                .map(|p| {
                    p.as_str()
                        .ok_or_else(|| SpecError("`opt.protocols` entries must be strings".into()))
                        .and_then(normalize_protocol)
                })
                .collect::<Result<_, _>>()?,
        };
        let objective = match opt_table.get("objective") {
            None => Objective::Worst,
            Some(v) => Objective::parse(
                v.as_str()
                    .ok_or_else(|| SpecError("`opt.objective` must be a string".into()))?,
            )?,
        };
        let pos_int = |key: &str, default: usize| -> Result<usize, SpecError> {
            match opt_table.get(key) {
                None => Ok(default),
                Some(v) => match v.as_i64() {
                    Some(n) if n > 0 => Ok(n as usize),
                    _ => Err(SpecError(format!("`opt.{key}` must be a positive integer"))),
                },
            }
        };

        let opt_f64 = |key: &str| -> Result<Option<f64>, SpecError> {
            match opt_table.get(key) {
                None => Ok(None),
                Some(v) => v
                    .as_f64()
                    .map(Some)
                    .ok_or_else(|| SpecError(format!("`opt.{key}` must be a number"))),
            }
        };
        let eta_range = match (opt_f64("eta_min")?, opt_f64("eta_max")?) {
            (None, None) => None,
            // one-sided restrictions leave the other bound open: the
            // intersection with the protocol's declared range clamps it
            (lo, hi) => Some((lo.unwrap_or(f64::MIN_POSITIVE), hi.unwrap_or(1.0))),
        };

        let pair = match opt_table.get("pair") {
            None => false,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| SpecError("`opt.pair` must be a boolean".into()))?,
        };

        let adaptive = match opt_table.get("adaptive") {
            None => AdaptiveSpec::default(),
            Some(v) => parse_adaptive(v)?,
        };

        let spec = OptSpec {
            base,
            protocols,
            objective,
            seeds_per_axis: pos_int("seeds_per_axis", 6)?,
            rounds: pos_int("rounds", 2)?,
            max_evals: pos_int("max_evals", 256)?,
            nodes: pos_int("nodes", 2)? as u32,
            pair,
            eta_range,
            adaptive,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Cross-field validation: the evaluator must be able to produce the
    /// requested objective.
    pub fn validate(&self) -> Result<(), SpecError> {
        self.base.validate()?;
        if self.base.backend == Backend::Bounds {
            return Err(SpecError(
                "the bounds backend is the reference curve, not an evaluator \
                 (use exact, montecarlo or netsim)"
                    .into(),
            ));
        }
        if self.protocols.is_empty() {
            return Err(SpecError("opt spec needs at least one protocol".into()));
        }
        if self.nodes < 2 {
            return Err(SpecError(format!(
                "nodes {} below 2 (discovery needs a pair)",
                self.nodes
            )));
        }
        if self.nodes != 2 && self.base.backend != Backend::Netsim {
            return Err(SpecError(
                "`opt.nodes` requires backend = \"netsim\"".into(),
            ));
        }
        if self.pair && self.base.metric != Metric::TwoWay {
            return Err(SpecError(
                "pair = true optimizes against the Theorem 5.7 asymmetric bound, \
                 which is a two-way bound (set metric = \"two-way\")"
                    .into(),
            ));
        }
        if self.pair && self.base.radio.alpha != 1.0 {
            return Err(SpecError(format!(
                "pair = true with radio.alpha = {} is not supported: the coupled \
                 Theorem 5.7 construction is built for α = 1",
                self.base.radio.alpha
            )));
        }
        if let Some((lo, hi)) = self.eta_range {
            if !(lo.is_finite() && hi.is_finite() && lo > 0.0 && lo <= hi && hi <= 1.0) {
                return Err(SpecError(format!(
                    "eta_min/eta_max = [{lo}, {hi}] must satisfy 0 < eta_min ≤ eta_max ≤ 1"
                )));
            }
        }
        if self.adaptive.enabled {
            if !(self.adaptive.confidence.is_finite() && self.adaptive.confidence > 0.0) {
                return Err(SpecError(format!(
                    "adaptive.confidence = {} must be a positive number",
                    self.adaptive.confidence
                )));
            }
            if self.adaptive.screen_trials == Some(0) {
                return Err(SpecError(
                    "adaptive.screen_trials must be a positive integer".into(),
                ));
            }
        }
        match (self.base.backend, self.objective) {
            (Backend::Exact, Objective::P95 | Objective::P99) => {
                if self.base.metric != Metric::OneWay {
                    return Err(SpecError(
                        "exact percentile objectives need metric = \"one-way\" \
                         (the exact latency distribution is one-way)"
                            .into(),
                    ));
                }
                if !self.base.percentiles {
                    return Err(SpecError(
                        "objective p95/p99 on the exact backend needs `percentiles = true`".into(),
                    ));
                }
            }
            (Backend::Netsim, Objective::P99) => {
                return Err(SpecError(
                    "the netsim evaluator reports pair_p95_s at most (use p95 or worst)".into(),
                ));
            }
            _ => {}
        }
        Ok(())
    }

    /// The spec's content hash: the base's semantic fields plus every
    /// search knob, for provenance lines and export headers. (Evaluation
    /// cache keys are per-candidate and do not include the search knobs,
    /// so overlapping searches share entries.)
    pub fn content_hash(&self) -> String {
        use nd_core::stable::StableEncode;
        let mut bytes = Vec::new();
        self.base.content_hash().encode(&mut bytes);
        "opt".encode(&mut bytes);
        self.protocols.encode(&mut bytes);
        self.objective.name().encode(&mut bytes);
        self.seeds_per_axis.encode(&mut bytes);
        self.rounds.encode(&mut bytes);
        self.max_evals.encode(&mut bytes);
        (self.nodes as u64).encode(&mut bytes);
        self.pair.encode(&mut bytes);
        self.eta_range.map(|(lo, _)| lo).encode(&mut bytes);
        self.eta_range.map(|(_, hi)| hi).encode(&mut bytes);
        // the adaptive knobs are search knobs like rounds/max_evals; only
        // encoded when enabled so every pre-adaptive spec keeps its hash
        if self.adaptive.enabled {
            "adaptive".encode(&mut bytes);
            self.adaptive.screen_trials.encode(&mut bytes);
            self.adaptive.confidence.encode(&mut bytes);
        }
        nd_sweep::hash::sha256_hex(&bytes)
    }
}

/// Parse the `[opt.adaptive]` table.
fn parse_adaptive(v: &Value) -> Result<AdaptiveSpec, SpecError> {
    let table = v
        .as_table()
        .ok_or_else(|| SpecError("`opt.adaptive` must be a table".into()))?;
    for key in table.keys() {
        if !matches!(key.as_str(), "enabled" | "screen_trials" | "confidence") {
            return Err(SpecError(format!(
                "unknown key `{key}` in [opt.adaptive] (allowed: enabled, screen_trials, \
                 confidence)"
            )));
        }
    }
    let enabled = match table.get("enabled") {
        None => true, // writing the table at all opts in
        Some(v) => v
            .as_bool()
            .ok_or_else(|| SpecError("`opt.adaptive.enabled` must be a boolean".into()))?,
    };
    let screen_trials = match table.get("screen_trials") {
        None => None,
        Some(v) => match v.as_i64() {
            Some(n) if n > 0 => Some(n as usize),
            _ => {
                return Err(SpecError(
                    "`opt.adaptive.screen_trials` must be a positive integer".into(),
                ))
            }
        },
    };
    let confidence = match table.get("confidence") {
        None => AdaptiveSpec::default().confidence,
        Some(v) => v
            .as_f64()
            .ok_or_else(|| SpecError("`opt.adaptive.confidence` must be a number".into()))?,
    };
    Ok(AdaptiveSpec {
        enabled,
        screen_trials,
        confidence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = r#"
name = "demo-opt"
backend = "exact"
metric = "two-way"

[radio]
omega_us = 36

[opt]
protocols = ["optimal", "disco"]
objective = "worst"
seeds_per_axis = 4
rounds = 1
max_evals = 64
"#;

    #[test]
    fn parses_and_normalizes() {
        let s = OptSpec::from_toml_str(DEMO).unwrap();
        assert_eq!(s.base.backend, Backend::Exact);
        assert_eq!(s.base.metric, Metric::TwoWay);
        assert_eq!(
            s.protocols,
            vec!["optimal-slotless".to_string(), "disco".to_string()]
        );
        assert_eq!(s.objective, Objective::Worst);
        assert_eq!((s.seeds_per_axis, s.rounds, s.max_evals), (4, 1, 64));
    }

    #[test]
    fn rejects_grids_unknown_keys_and_bad_combos() {
        for (bad, needle) in [
            ("backend = \"exact\"\n[grid]\neta = [0.05]\n[opt]\nprotocols = [\"disco\"]\n", "[grid]"),
            ("backend = \"exact\"\n[opt]\nprotocols = [\"disco\"]\ntypo = 1\n", "unknown key"),
            ("backend = \"exact\"\n", "[opt] table"),
            ("backend = \"bounds\"\n[opt]\nprotocols = [\"disco\"]\n", "not an evaluator"),
            ("backend = \"exact\"\n[opt]\nprotocols = []\n", "at least one protocol"),
            ("backend = \"exact\"\n[opt]\nprotocols = [\"warp-drive\"]\n", "warp-drive"),
            (
                "backend = \"exact\"\nmetric = \"two-way\"\n[opt]\nprotocols = [\"disco\"]\nobjective = \"p95\"\n",
                "one-way",
            ),
            (
                "backend = \"netsim\"\n[opt]\nprotocols = [\"disco\"]\nobjective = \"p99\"\n",
                "pair_p95_s",
            ),
            ("backend = \"exact\"\n[opt]\nprotocols = [\"disco\"]\nnodes = 4\n", "netsim"),
            ("backend = \"exact\"\n[opt]\nprotocols = [\"disco\"]\nrounds = 0\n", "positive"),
        ] {
            let err = OptSpec::from_toml_str(bad).unwrap_err().to_string();
            assert!(err.contains(needle), "`{bad}` → `{err}`");
        }
    }

    #[test]
    fn one_sided_eta_restrictions_are_valid() {
        let hi_only = OptSpec::from_toml_str(
            "backend = \"exact\"\n[opt]\nprotocols = [\"optimal\"]\neta_max = 0.1\n",
        )
        .unwrap();
        assert_eq!(hi_only.eta_range.map(|(_, hi)| hi), Some(0.1));
        let lo_only = OptSpec::from_toml_str(
            "backend = \"exact\"\n[opt]\nprotocols = [\"optimal\"]\neta_min = 0.05\n",
        )
        .unwrap();
        assert_eq!(lo_only.eta_range, Some((0.05, 1.0)));
        // explicit nonsense still rejected
        assert!(OptSpec::from_toml_str(
            "backend = \"exact\"\n[opt]\nprotocols = [\"optimal\"]\neta_min = 0.0\n",
        )
        .is_err());
        assert!(OptSpec::from_toml_str(
            "backend = \"exact\"\n[opt]\nprotocols = [\"optimal\"]\neta_min = 0.2\neta_max = 0.1\n",
        )
        .is_err());
    }

    #[test]
    fn pair_mode_parses_and_requires_two_way() {
        let s = OptSpec::from_toml_str(
            "backend = \"exact\"\nmetric = \"two-way\"\n[opt]\nprotocols = [\"optimal\"]\npair = true\n",
        )
        .unwrap();
        assert!(s.pair);
        // the pair flag is a search knob: it feeds the provenance hash
        let mut sym = s.clone();
        sym.pair = false;
        assert_ne!(s.content_hash(), sym.content_hash());
        // Theorem 5.7 is a two-way bound
        let err = OptSpec::from_toml_str(
            "backend = \"exact\"\nmetric = \"one-way\"\n[opt]\nprotocols = [\"optimal\"]\npair = true\n",
        )
        .unwrap_err()
        .to_string();
        assert!(err.contains("two-way"), "{err}");
        // and the flag must be a boolean
        assert!(OptSpec::from_toml_str(
            "backend = \"exact\"\n[opt]\nprotocols = [\"optimal\"]\npair = 1\n",
        )
        .is_err());
        // the coupled construction is an α = 1 construction
        let err = OptSpec::from_toml_str(
            "backend = \"exact\"\nmetric = \"two-way\"\n[radio]\nalpha = 2.0\n\
             [opt]\nprotocols = [\"optimal\"]\npair = true\n",
        )
        .unwrap_err()
        .to_string();
        assert!(err.contains("alpha"), "{err}");
    }

    #[test]
    fn adaptive_table_parses_defaults_and_rejections() {
        // no table: off, and hashes exactly like the pre-adaptive grammar
        let plain = OptSpec::from_toml_str(DEMO).unwrap();
        assert!(!plain.adaptive.enabled);

        // writing the table opts in; knobs resolve sensibly
        let s = OptSpec::from_toml_str(
            "backend = \"montecarlo\"\n[opt]\nprotocols = [\"optimal\"]\n\
             [opt.adaptive]\nscreen_trials = 5\nconfidence = 0.5\n",
        )
        .unwrap();
        assert!(s.adaptive.enabled);
        assert_eq!(s.adaptive.screen_trials, Some(5));
        assert_eq!(s.adaptive.confidence, 0.5);
        assert_eq!(s.adaptive.resolved_screen_trials(100), 5);
        // the resolved count never exceeds the full budget
        assert_eq!(s.adaptive.resolved_screen_trials(3), 3);
        // default screening budget: trials/8, at least 2
        let d = AdaptiveSpec {
            enabled: true,
            ..AdaptiveSpec::default()
        };
        assert_eq!(d.resolved_screen_trials(100), 12);
        assert_eq!(d.resolved_screen_trials(8), 2);
        assert!((d.margin(4) - 0.5).abs() < 1e-12);

        // explicit disable round-trips
        let off = OptSpec::from_toml_str(
            "backend = \"montecarlo\"\n[opt]\nprotocols = [\"optimal\"]\n\
             [opt.adaptive]\nenabled = false\n",
        )
        .unwrap();
        assert!(!off.adaptive.enabled);

        for (bad, needle) in [
            (
                "backend = \"montecarlo\"\n[opt]\nprotocols = [\"optimal\"]\n\
                 [opt.adaptive]\nscreen_trials = 0\n",
                "positive integer",
            ),
            (
                "backend = \"montecarlo\"\n[opt]\nprotocols = [\"optimal\"]\n\
                 [opt.adaptive]\nconfidence = -1.0\n",
                "positive",
            ),
            (
                "backend = \"montecarlo\"\n[opt]\nprotocols = [\"optimal\"]\n\
                 [opt.adaptive]\ntypo = 1\n",
                "unknown key",
            ),
        ] {
            let err = OptSpec::from_toml_str(bad).unwrap_err().to_string();
            assert!(err.contains(needle), "`{bad}` → `{err}`");
        }
    }

    #[test]
    fn adaptive_knobs_feed_the_provenance_hash() {
        let plain = OptSpec::from_toml_str(DEMO).unwrap();
        // a disabled table hashes identically to no table at all, so every
        // pre-adaptive spec keeps its provenance hash
        let mut off = plain.clone();
        off.adaptive = AdaptiveSpec {
            enabled: false,
            screen_trials: Some(5),
            confidence: 0.25,
        };
        assert_eq!(plain.content_hash(), off.content_hash());
        // enabled knobs are search knobs: they change the hash
        let mut on = plain.clone();
        on.adaptive.enabled = true;
        assert_ne!(plain.content_hash(), on.content_hash());
        let mut tighter = on.clone();
        tighter.adaptive.confidence = 2.0;
        assert_ne!(on.content_hash(), tighter.content_hash());
    }

    #[test]
    fn netsim_nodes_accepted() {
        let s = OptSpec::from_toml_str(
            "backend = \"netsim\"\n[opt]\nprotocols = [\"optimal\"]\nnodes = 4\n",
        )
        .unwrap();
        assert_eq!(s.nodes, 4);
    }

    #[test]
    fn content_hash_tracks_search_knobs() {
        let a = OptSpec::from_toml_str(DEMO).unwrap();
        let mut b = a.clone();
        b.rounds = 5;
        assert_ne!(a.content_hash(), b.content_hash());
        let mut c = a.clone();
        c.protocols.pop();
        assert_ne!(a.content_hash(), c.content_hash());
        // the name is cosmetic, inherited from the sweep grammar
        let mut d = a.clone();
        d.base.name = "renamed".into();
        assert_eq!(a.content_hash(), d.content_hash());
    }

    #[test]
    fn alias_and_rejections_in_normalize() {
        assert_eq!(normalize_protocol("optimal").unwrap(), "optimal-slotless");
        assert_eq!(normalize_protocol("disco").unwrap(), "disco");
        assert!(normalize_protocol("diff-code:7:1,2,4").is_err());
    }
}
