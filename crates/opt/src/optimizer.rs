//! The search: coarse grid seeding plus adaptive refinement around the
//! current front.
//!
//! Per protocol, the optimizer
//!
//! 1. seeds the protocol's declarative [`nd_protocols::ParamSpace`] with
//!    a coarse grid (`seeds_per_axis` values per parameter, log- or
//!    linearly spaced as the space declares),
//! 2. evaluates all feasible candidates in parallel on `nd-sweep`'s
//!    worker pool, serving repeats from the content-addressed result
//!    cache — with optional **adaptive trial allocation**
//!    (`[opt.adaptive]`): every new candidate is first *screened* with a
//!    reduced trial budget, and only candidates whose domination is not
//!    statistically settled are *promoted* to the full budget,
//! 3. extracts the Pareto front over (duty cycle, latency) and spends the
//!    remaining budget on *refinement*: end extensions plus the
//!    scale-appropriate midpoint between each pair of adjacent front
//!    points, ranked by the front area the gap could close (exact 2-D
//!    [`hypervolume`] rectangles), for `rounds` rounds,
//! 4. reports each front point's gap to the paper's closed-form
//!    optimality bound at its achieved duty cycle.
//!
//! The whole search is deterministic: seeding grids, refinement midpoints
//! and every backend evaluation are pure functions of the spec, so
//! re-running a spec replays the identical candidate sequence — and is
//! served entirely from cache. The adaptive stage keeps that contract:
//! screening verdicts are pure functions of content-hashed evaluation
//! results (never wall clock, never thread interleaving — `run_parallel`
//! returns results in input order), so cached and fresh runs, at any
//! thread count, produce identical fronts.

use crate::evaluator::{evaluator_for, screening_evaluator, Candidate, Evaluation, Evaluator};
use crate::pareto::{front_indices, hypervolume};
use crate::spec::OptSpec;
use nd_core::bounds::{optimal_discovery_bound, BoundMetric};
use nd_protocols::{ParamSpace, ProtocolKind};
use nd_sweep::cache::{CachedResult, ResultCache};
use nd_sweep::pool::{default_threads, run_parallel};
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;
use std::time::{Duration, Instant};

/// Error-message prefix marking a search aborted by a corrupt cache
/// entry under [`OptOptions::strict_cache`]. Serving callers match on
/// this to map the failure to their corrupt-cache error code.
pub const CORRUPT_CACHE: &str = "corrupt-cache";

/// Options orthogonal to the spec: parallelism and cache placement
/// (mirrors `nd_sweep::SweepOptions`).
#[derive(Clone, Debug)]
pub struct OptOptions {
    /// Worker threads; `None` = all cores.
    pub threads: Option<usize>,
    /// Consult/populate the result cache.
    pub use_cache: bool,
    /// Cache location; `None` = [`ResultCache::default_dir`] (shared with
    /// `nd-sweep`).
    pub cache_dir: Option<std::path::PathBuf>,
    /// How to treat a corrupt cache entry ([`nd_sweep::CacheError`]).
    /// `false` (batch default): recompute — corruption is a miss, and the
    /// overwriting store heals the entry. `true` (serving callers): abort
    /// the search with [`OptError`] carrying the [`CORRUPT_CACHE`] prefix
    /// — a server must report damaged state, not quietly rewrite it.
    pub strict_cache: bool,
}

impl Default for OptOptions {
    fn default() -> Self {
        OptOptions {
            threads: None,
            use_cache: true,
            cache_dir: None,
            strict_cache: false,
        }
    }
}

impl OptOptions {
    /// Options for hermetic in-process use (tests): no disk cache.
    pub fn uncached() -> Self {
        OptOptions {
            use_cache: false,
            ..Self::default()
        }
    }
}

/// One point of a computed front.
#[derive(Clone, Debug)]
pub struct FrontPoint {
    /// The requested duty-cycle target η (role A's / η_E in a pair
    /// search).
    pub eta: f64,
    /// Role A's slot length in µs (slotted protocols).
    pub slot_us: Option<f64>,
    /// Role B's requested duty-cycle target η_F (pair searches only).
    pub eta_b: Option<f64>,
    /// Role B's slot length in µs (pair searches of slotted protocols).
    pub slot_us_b: Option<f64>,
    /// The achieved budget: the constructed schedule's nominal duty
    /// cycle (symmetric search) or the pair's total η_E + η_F (pair
    /// search) — the x-axis of the front.
    pub duty_cycle: f64,
    /// Role B's achieved duty cycle η_F (pair searches only).
    pub duty_cycle_b: Option<f64>,
    /// The latency objective value, seconds.
    pub latency_s: f64,
    /// The closed-form optimal latency at this point (Theorem 5.5/C.1 at
    /// the achieved duty cycle, or Theorem 5.7 at the achieved (η_E, η_F)
    /// for pair searches; NaN if the bound is undefined here).
    pub bound_s: f64,
    /// Relative distance to the bound: `(latency − bound) / bound`.
    pub gap_frac: f64,
    /// Every metric the backend produced for this point.
    pub metrics: BTreeMap<String, f64>,
}

/// A per-protocol search result.
#[derive(Clone, Debug)]
pub struct FrontResult {
    /// Registry protocol name.
    pub protocol: String,
    /// The front, sorted by duty cycle ascending (latency strictly
    /// descending).
    pub front: Vec<FrontPoint>,
    /// Candidates evaluated (successes + failures, fresh + cached).
    pub evaluated: usize,
    /// Fresh backend executions (not served from cache).
    pub executed: usize,
    /// Evaluations served from the cache.
    pub cache_hits: usize,
    /// Candidates whose evaluation errored (infeasible constructions,
    /// censored simulation results).
    pub errors: usize,
    /// The errors broken down by reason (see [`censor_reason`]) — the
    /// diagnostic an empty front prints so users see *why* nothing
    /// survived.
    pub censored: BTreeMap<&'static str, usize>,
    /// The censored counts broken down per search round (index = round,
    /// 0 = seeding). Adaptive screening censors aggressively at low trial
    /// counts, so the *when* matters for debugging, not just the total.
    pub censored_rounds: Vec<BTreeMap<&'static str, usize>>,
    /// Candidates evaluated at the reduced screening budget (adaptive
    /// runs only; 0 when screening is off or structurally a no-op).
    pub screened: usize,
    /// Screened candidates promoted to the full trial budget.
    pub promoted: usize,
    /// Screened candidates dropped because their domination was
    /// statistically settled at the screening budget.
    pub early_stops: usize,
}

/// Classify a candidate-evaluation error into a censoring reason for
/// [`FrontResult::censored`].
pub fn censor_reason(error: &str) -> &'static str {
    if error.contains("never discovered") {
        "undiscovered-offsets"
    } else if error.contains("failed to discover") {
        "failed-trials"
    } else if error.contains("node pairs discovered") {
        "undiscovered-pairs"
    } else {
        "construction-error"
    }
}

/// A completed optimization: one front per protocol.
#[derive(Debug)]
pub struct OptOutcome {
    /// The spec's human-readable name.
    pub name: String,
    /// The spec's content hash.
    pub spec_hash: String,
    /// The evaluator backend name.
    pub backend: String,
    /// The latency objective name.
    pub objective: String,
    /// The metric key the objective read.
    pub latency_metric: String,
    /// One result per protocol, in spec order.
    pub fronts: Vec<FrontResult>,
    /// Total fresh executions across all fronts.
    pub executed: usize,
    /// Total cache hits across all fronts.
    pub cache_hits: usize,
    /// Wall-clock duration.
    pub wall: Duration,
}

/// Optimizer-level error (spec problems; per-candidate failures are
/// counted, not fatal).
#[derive(Debug)]
pub struct OptError(pub String);

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "optimization failed: {}", self.0)
    }
}

impl std::error::Error for OptError {}

/// Run the full search a spec describes: one Pareto front per protocol.
pub fn run_opt(spec: &OptSpec, opts: &OptOptions) -> Result<OptOutcome, OptError> {
    let _span = nd_obs::span!("opt.run", name = spec.base.name.as_str());
    let start = Instant::now();
    let evaluator = evaluator_for(spec).map_err(|e| OptError(e.to_string()))?;
    let screen = screening_evaluator(spec).map_err(|e| OptError(e.to_string()))?;
    let margin = spec
        .adaptive
        .margin(spec.adaptive.resolved_screen_trials(spec.base.sim.trials));
    let cache = opts.use_cache.then(|| {
        ResultCache::at(
            opts.cache_dir
                .clone()
                .unwrap_or_else(ResultCache::default_dir),
        )
    });
    let threads = opts.threads.unwrap_or_else(default_threads);

    let mut fronts = Vec::with_capacity(spec.protocols.len());
    for protocol in &spec.protocols {
        fronts.push(front_for_protocol(
            protocol,
            spec,
            evaluator.as_ref(),
            screen.as_deref(),
            margin,
            cache.as_ref(),
            threads,
            opts.strict_cache,
        )?);
    }

    Ok(OptOutcome {
        name: spec.base.name.clone(),
        spec_hash: spec.content_hash(),
        backend: evaluator.backend_name().to_string(),
        objective: spec.objective.name().to_string(),
        latency_metric: evaluator.latency_metric().to_string(),
        executed: fronts.iter().map(|f| f.executed).sum(),
        cache_hits: fronts.iter().map(|f| f.cache_hits).sum(),
        fronts,
        wall: start.elapsed(),
    })
}

/// Translate a parameter-space point into a concrete candidate. The
/// optimizer understands the axes the sweep grammar names: `eta`
/// (mandatory for a duty-cycle front) and `slot_us` (slotted protocols).
///
/// A space without an `eta` axis is a typed, infeasible-search error —
/// not a panic: callers (in particular `nd-serve`) surface it as an
/// infeasible spec, never as an internal failure.
fn candidate_at(protocol: &str, space: &ParamSpace, point: &[f64]) -> Result<Candidate, OptError> {
    let eta = space.value_of("eta", point).ok_or_else(|| {
        OptError(format!(
            "{protocol}: parameter space declares no `eta` axis, so a duty-cycle \
             front cannot be searched over it (infeasible search space)"
        ))
    })?;
    Ok(Candidate {
        protocol: protocol.to_string(),
        eta,
        slot_us: space.value_of("slot_us", point),
        eta_b: space.value_of("eta_b", point),
        slot_us_b: space.value_of("slot_us_b", point),
    })
}

/// The search for one protocol; see the module docs for the algorithm.
/// `screen` is the reduced-budget evaluator of an adaptive run (`None`
/// when screening is off or structurally a no-op), `margin` the relative
/// domination margin of the sequential test.
#[allow(clippy::too_many_arguments)]
fn front_for_protocol(
    protocol: &str,
    spec: &OptSpec,
    evaluator: &dyn Evaluator,
    screen: Option<&dyn Evaluator>,
    margin: f64,
    cache: Option<&ResultCache>,
    threads: usize,
    strict_cache: bool,
) -> Result<FrontResult, OptError> {
    let _span = nd_obs::span!("opt.front", protocol = protocol);
    let kind = ProtocolKind::from_name(protocol)
        .ok_or_else(|| OptError(format!("`{protocol}` is not a registry protocol")))?;
    // pair searches double the space: (eta, slot_us?) per role
    let mut space = kind.param_space();
    if spec.pair {
        space = space.paired();
    }
    if let Some((lo, hi)) = spec.eta_range {
        // the restriction applies to both roles' duty-cycle axes
        let axes: &[&str] = if spec.pair {
            &["eta", "eta_b"]
        } else {
            &["eta"]
        };
        for axis in axes {
            space = space.restrict(axis, lo, hi).ok_or_else(|| {
                OptError(format!(
                    "{protocol}: eta range [{lo}, {hi}] does not intersect the protocol's \
                     declared duty-cycle range"
                ))
            })?;
        }
    }
    let omega = spec.base.radio.omega;

    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut points: Vec<Vec<f64>> = Vec::new(); // the evaluated space points
    let mut evals: Vec<Evaluation> = Vec::new(); // successes, parallel to `points` filtering
    let mut evaluated = 0usize;
    let mut executed = 0usize;
    let mut cache_hits = 0usize;
    let mut errors = 0usize;
    let mut censored: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut censored_rounds: Vec<BTreeMap<&'static str, usize>> = Vec::new();
    let mut screened = 0usize;
    let mut promoted = 0usize;
    let mut early_stops = 0usize;
    // hypervolume accounting: the reference corner is fixed once the
    // first successful evaluations exist (full duty cycle, twice the
    // worst latency seen then), so per-round gains are comparable
    let mut hv_ref: Option<(f64, f64)> = None;
    let mut hv_prev = 0.0;

    // round 0: the coarse seeding grid; rounds 1..=rounds: refinement
    let mut batch: Vec<Vec<f64>> = space
        .seed_grid(spec.seeds_per_axis)
        .into_iter()
        .filter(|p| space.feasible(p, omega))
        .collect();

    for round in 0..=spec.rounds {
        // dedupe against everything already evaluated, respect the budget
        // (strictly: a candidate counts the moment it is admitted, so no
        // batch — seeding included — can straddle `max_evals`)
        let mut fresh: Vec<(Vec<f64>, Candidate)> = Vec::new();
        for point in batch.drain(..) {
            if evaluated + fresh.len() >= spec.max_evals {
                break;
            }
            let cand = candidate_at(protocol, &space, &point)?;
            if seen.insert(evaluator.cache_key(&cand)) {
                fresh.push((point, cand));
            }
        }
        if fresh.is_empty() {
            break;
        }
        evaluated += fresh.len();
        nd_obs::metrics::add("opt.evals", fresh.len() as u64);
        nd_obs::metrics::observe("opt.round_evals", fresh.len() as u64);
        let mut round_censored: BTreeMap<&'static str, usize> = BTreeMap::new();
        let censor = |e: &str,
                      round_censored: &mut BTreeMap<&'static str, usize>,
                      errors: &mut usize,
                      censored: &mut BTreeMap<&'static str, usize>| {
            *errors += 1;
            nd_obs::metrics::inc("opt.errors");
            let reason = censor_reason(e);
            nd_obs::metrics::inc(&format!("opt.censored.{reason}"));
            nd_obs::metrics::inc(&format!("opt.round{round}.censored.{reason}"));
            *censored.entry(reason).or_insert(0) += 1;
            *round_censored.entry(reason).or_insert(0) += 1;
        };

        // stage 1 (adaptive runs only): screen every candidate at the
        // reduced trial budget; drop candidates whose domination the
        // sequential test settles, promote the rest
        let stage: Vec<(Vec<f64>, Candidate)> = if let Some(screen_ev) = screen {
            let results = {
                let _span = nd_obs::span!("opt.screen", round = round, candidates = fresh.len());
                run_parallel(&fresh, threads, |_, (_, cand)| {
                    evaluate_one(cand, screen_ev, cache, strict_cache)
                })
            };
            screened += fresh.len();
            nd_obs::metrics::add("opt.screened", fresh.len() as u64);
            // candidates that survive to the domination test, with their
            // screening objectives (None = censored at the screen budget)
            let mut cands: Vec<(Vec<f64>, Candidate)> = Vec::with_capacity(fresh.len());
            let mut screen_objs: Vec<Option<(f64, f64)>> = Vec::with_capacity(fresh.len());
            for ((point, cand), (result, from_cache)) in fresh.into_iter().zip(results) {
                if from_cache {
                    cache_hits += 1;
                    nd_obs::metrics::inc("opt.cache_hits");
                } else {
                    executed += 1;
                    nd_obs::metrics::inc("opt.executed");
                }
                match result {
                    Ok(eval) => {
                        screen_objs.push(Some((eval.duty_cycle, eval.latency_s)));
                        cands.push((point, cand));
                    }
                    Err(e) if e.starts_with(CORRUPT_CACHE) => return Err(OptError(e)),
                    Err(e) => {
                        let reason = censor_reason(&e);
                        nd_obs::metrics::inc(&format!("opt.screen.censored.{reason}"));
                        if reason == "construction-error" {
                            // building the schedule does not depend on the
                            // trial count: censor finally without spending
                            // the full budget
                            censor(&e, &mut round_censored, &mut errors, &mut censored);
                        } else {
                            // statistical censoring at a few trials proves
                            // nothing — promote for the full-budget verdict
                            screen_objs.push(None);
                            cands.push((point, cand));
                        }
                    }
                }
            }
            // the sequential test: candidate i is settled-dominated iff
            // some trusted full-budget evaluation or co-screened candidate
            // j is no worse on duty cycle and beats i's latency by the
            // relative margin on both sides. Pure function of
            // content-hashed results: deterministic at any thread count
            // and any cache state.
            let all: Vec<(f64, f64)> = evals
                .iter()
                .map(|e| (e.duty_cycle, e.latency_s))
                .chain(screen_objs.iter().flatten().copied())
                .collect();
            let mut survivors: Vec<(Vec<f64>, Candidate)> = Vec::with_capacity(cands.len());
            for (entry, obj) in cands.into_iter().zip(screen_objs) {
                let settled = obj.is_some_and(|(dc_i, lat_i)| {
                    all.iter().any(|&(dc_j, lat_j)| {
                        dc_j <= dc_i && lat_j * (1.0 + margin) < lat_i * (1.0 - margin)
                    })
                });
                if settled {
                    early_stops += 1;
                    nd_obs::metrics::inc("opt.early_stops");
                } else {
                    survivors.push(entry);
                }
            }
            promoted += survivors.len();
            nd_obs::metrics::add("opt.promoted", survivors.len() as u64);
            survivors
        } else {
            fresh
        };

        // stage 2: the full trial budget (the only stage when screening
        // is off)
        if !stage.is_empty() {
            let results = {
                let _span = nd_obs::span!("opt.round", round = round, candidates = stage.len());
                run_parallel(&stage, threads, |_, (_, cand)| {
                    evaluate_one(cand, evaluator, cache, strict_cache)
                })
            };
            for ((point, _), (result, from_cache)) in stage.into_iter().zip(results) {
                if from_cache {
                    cache_hits += 1;
                    nd_obs::metrics::inc("opt.cache_hits");
                } else {
                    executed += 1;
                    nd_obs::metrics::inc("opt.executed");
                }
                match result {
                    Ok(eval) => {
                        points.push(point);
                        evals.push(eval);
                    }
                    // strict-mode cache corruption is search-fatal, not a
                    // censored candidate: the caller asked to be told
                    Err(e) if e.starts_with(CORRUPT_CACHE) => return Err(OptError(e)),
                    Err(e) => censor(&e, &mut round_censored, &mut errors, &mut censored),
                }
            }
        }
        censored_rounds.push(round_censored);

        // hypervolume bookkeeping: how much front area this round bought
        let objs: Vec<(f64, f64)> = evals.iter().map(|e| (e.duty_cycle, e.latency_s)).collect();
        if hv_ref.is_none() {
            let worst_lat = objs.iter().map(|o| o.1).fold(0.0, f64::max);
            if worst_lat > 0.0 {
                hv_ref = Some((1.0, 2.0 * worst_lat));
            }
        }
        if let Some(reference) = hv_ref {
            let hv = hypervolume(&objs, reference);
            let gain_ppm = ((hv - hv_prev) / (reference.0 * reference.1) * 1e6).max(0.0);
            nd_obs::metrics::add("opt.hv_gain", gain_ppm as u64);
            hv_prev = hv;
        }

        if round == spec.rounds || evaluated >= spec.max_evals {
            break;
        }

        // refinement, hypervolume-guided: extensions beyond each end of
        // the front first (they open new territory the staircase cannot
        // price), then the midpoint of every adjacent front pair, ranked
        // by the exact rectangle of front area the gap could close — so
        // when the budget truncates the batch, it truncates the flattest
        // gaps
        let front = front_indices(&objs);
        if let (Some(&first), Some(&last)) = (front.first(), front.last()) {
            for (idx, end_of_range) in [(first, false), (last, true)] {
                let mut limit = points[idx].clone();
                for (i, p) in space.params.iter().enumerate() {
                    let (lo, hi) = p.range.limits();
                    limit[i] = if end_of_range { hi } else { lo };
                }
                batch.push(space.midpoint(&points[idx], &limit));
            }
        }
        let mut gaps: Vec<(f64, Vec<f64>)> = front
            .windows(2)
            .map(|w| {
                let (a, b) = (objs[w[0]], objs[w[1]]);
                let closable = (b.0 - a.0) * (a.1 - b.1);
                (closable, space.midpoint(&points[w[0]], &points[w[1]]))
            })
            .collect();
        gaps.sort_by(|x, y| y.0.total_cmp(&x.0));
        batch.extend(gaps.into_iter().map(|(_, p)| p));
        batch.retain(|p| space.feasible(p, omega));
    }

    // final front, with gap-to-bound annotations: Theorem 5.5/C.1 at the
    // achieved duty cycle for symmetric searches, Theorem 5.7 at the
    // achieved (η_E, η_F) for pair searches
    let objs: Vec<(f64, f64)> = evals.iter().map(|e| (e.duty_cycle, e.latency_s)).collect();
    let bound_metric = BoundMetric::from_name(spec.base.metric.name())
        .expect("sweep metrics and bound metrics share spellings");
    let alpha = spec.base.radio.alpha;
    let omega_secs = omega.as_secs_f64();
    let front = front_indices(&objs)
        .into_iter()
        .map(|i| {
            let e = &evals[i];
            let bound_s = match e.duty_cycle_b {
                Some(dc_b) => {
                    let dc_a = e.duty_cycle - dc_b;
                    if dc_a > 0.0 && dc_b > 0.0 {
                        nd_core::bounds::asymmetric_bound(alpha, omega_secs, dc_a, dc_b)
                    } else {
                        f64::NAN
                    }
                }
                None => optimal_discovery_bound(bound_metric, alpha, omega_secs, e.duty_cycle)
                    .map_or(f64::NAN, |b| b),
            };
            FrontPoint {
                eta: e.candidate.eta,
                slot_us: e.candidate.slot_us,
                eta_b: e.candidate.eta_b,
                slot_us_b: e.candidate.slot_us_b,
                duty_cycle: e.duty_cycle,
                duty_cycle_b: e.duty_cycle_b,
                latency_s: e.latency_s,
                bound_s,
                gap_frac: (e.latency_s - bound_s) / bound_s,
                metrics: e.metrics.clone(),
            }
        })
        .collect();

    Ok(FrontResult {
        protocol: protocol.to_string(),
        front,
        evaluated,
        executed,
        cache_hits,
        errors,
        censored,
        censored_rounds,
        screened,
        promoted,
        early_stops,
    })
}

/// Evaluate one candidate, cache-first. Returns the interpretation result
/// and whether the raw metric row came from the cache.
///
/// Only `run` failures (infeasible constructions, backend errors) are
/// cached as errors; interpretation failures (censored results) are
/// re-derived from the cached metric row, so the cache stays
/// byte-compatible with ordinary `nd-sweep` entries for the same job.
fn evaluate_one(
    cand: &Candidate,
    evaluator: &dyn Evaluator,
    cache: Option<&ResultCache>,
    strict_cache: bool,
) -> (Result<Evaluation, String>, bool) {
    let _span = nd_obs::span!(
        "opt.eval",
        protocol = cand.protocol.as_str(),
        eta = cand.eta
    );
    let key = evaluator.cache_key(cand);
    if let Some(c) = cache {
        match c.load(&key) {
            Ok(Some(hit)) => {
                let result = match hit.error {
                    Some(e) => Err(e),
                    None => evaluator.interpret(cand, hit.metrics, true),
                };
                return (result, true);
            }
            Ok(None) => {}
            // strict callers get the corruption surfaced (the prefixed
            // error is promoted to a search-fatal OptError by
            // front_for_protocol, never stored, never censor-counted);
            // batch callers fall through and recompute
            Err(e) if strict_cache => return (Err(format!("{CORRUPT_CACHE}: {e}")), true),
            Err(_) => {}
        }
    }
    let raw = evaluator.run(cand);
    if let Some(c) = cache {
        let entry = match &raw {
            Ok(metrics) => CachedResult {
                metrics: metrics.clone(),
                error: None,
            },
            Err(e) => CachedResult {
                metrics: BTreeMap::new(),
                error: Some(e.clone()),
            },
        };
        c.store(&key, &entry);
    }
    (
        raw.and_then(|metrics| evaluator.interpret(cand, metrics, false)),
        false,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pareto::is_valid_front;

    fn spec(toml: &str) -> OptSpec {
        OptSpec::from_toml_str(toml).unwrap()
    }

    #[test]
    fn optimal_front_tracks_the_bound() {
        let s = spec(
            "backend = \"exact\"\nmetric = \"two-way\"\n\
             [opt]\nprotocols = [\"optimal\"]\nseeds_per_axis = 5\nrounds = 1\n",
        );
        let out = run_opt(&s, &OptOptions::uncached()).unwrap();
        assert_eq!(out.fronts.len(), 1);
        let f = &out.fronts[0];
        assert!(
            f.front.len() >= 5,
            "seeding + refinement: {}",
            f.front.len()
        );
        let objs: Vec<(f64, f64)> = f
            .front
            .iter()
            .map(|p| (p.duty_cycle, p.latency_s))
            .collect();
        assert!(is_valid_front(&objs));
        for p in &f.front {
            assert!(
                p.gap_frac.abs() < 0.05,
                "η {}: latency {} vs bound {} (gap {})",
                p.eta,
                p.latency_s,
                p.bound_s,
                p.gap_frac
            );
        }
        assert_eq!(f.evaluated, f.executed, "uncached run executes all");
        assert_eq!(f.cache_hits, 0);
    }

    #[test]
    fn refinement_adds_points_between_front_neighbors() {
        let base = "backend = \"exact\"\nmetric = \"two-way\"\n\
                    [opt]\nprotocols = [\"optimal\"]\nseeds_per_axis = 3\n";
        let no_refine = run_opt(
            &spec(&format!("{base}rounds = 1\nmax_evals = 3\n")),
            &OptOptions::uncached(),
        )
        .unwrap();
        let refined = run_opt(
            &spec(&format!("{base}rounds = 2\n")),
            &OptOptions::uncached(),
        )
        .unwrap();
        assert!(refined.fronts[0].evaluated > no_refine.fronts[0].evaluated);
        assert!(refined.fronts[0].front.len() > no_refine.fronts[0].front.len());
    }

    #[test]
    fn budget_is_a_hard_cap() {
        let s = spec(
            "backend = \"exact\"\nmetric = \"two-way\"\n\
             [opt]\nprotocols = [\"optimal\"]\nseeds_per_axis = 6\nrounds = 3\nmax_evals = 4\n",
        );
        let out = run_opt(&s, &OptOptions::uncached()).unwrap();
        assert_eq!(out.fronts[0].evaluated, 4);
    }

    #[test]
    fn slotted_protocols_search_both_axes() {
        // a slotted protocol's exact worst case is censored (ω/slot of
        // the offsets are never covered), so the meaningful objective is
        // a percentile — and only slots with a small enough uncovered
        // fraction are admitted
        let s = spec(
            "backend = \"exact\"\nmetric = \"one-way\"\n\
             [radio]\nomega_us = 100\n\
             [opt]\nprotocols = [\"code-based\"]\nobjective = \"p95\"\n\
             seeds_per_axis = 3\nrounds = 1\neta_min = 0.02\n",
        );
        let out = run_opt(&s, &OptOptions::uncached()).unwrap();
        let f = &out.fronts[0];
        assert!(!f.front.is_empty());
        // the mid slot (~1.4 ms) is feasible but leaves ω/slot ≈ 7% of
        // the offsets uncovered — censored beyond the 5% a p95 tolerates
        assert!(f.errors > 0, "short slots are censored beyond 5%");
        for p in &f.front {
            let slot = p.slot_us.expect("slotted candidates carry a slot");
            assert!(slot >= 1999.0, "slot {slot} would censor p95 (ω = 100 µs)");
            assert!(p.metrics.get("undiscovered_prob").copied().unwrap_or(1.0) <= 0.05 + 1e-12);
        }
    }

    #[test]
    fn worst_objective_censors_slotted_protocols_entirely() {
        let s = spec(
            "backend = \"exact\"\nmetric = \"one-way\"\npercentiles = false\n\
             [opt]\nprotocols = [\"code-based\"]\nseeds_per_axis = 2\nrounds = 1\neta_min = 0.05\n",
        );
        let out = run_opt(&s, &OptOptions::uncached()).unwrap();
        let f = &out.fronts[0];
        assert!(f.front.is_empty(), "no slotted config covers all offsets");
        assert_eq!(f.errors, f.evaluated);
    }

    #[test]
    fn missing_eta_axis_is_a_typed_infeasible_error() {
        // a space with no duty-cycle axis cannot be searched for a
        // duty-cycle front — a typed OptError, never a panic, so serving
        // callers can classify it as an infeasible spec
        let space = ParamSpace {
            params: vec![nd_protocols::ParamDef {
                name: "slot_us",
                range: nd_protocols::ParamRange::LinRange { lo: 1.0, hi: 2.0 },
            }],
            constraints: vec![],
        };
        let err = candidate_at("custom", &space, &[1.5]).unwrap_err();
        assert!(
            err.0.contains("no `eta` axis"),
            "typed, descriptive: {err}"
        );
        assert!(err.0.contains("infeasible"), "classifiable: {err}");
    }

    #[test]
    fn budget_equal_to_seed_grid_admits_exactly_the_seeds() {
        // the cap is strictly hard at the boundary: a budget exactly the
        // seeding-grid size admits every seed and nothing else, however
        // many refinement rounds the spec asks for
        let s = spec(
            "backend = \"exact\"\nmetric = \"two-way\"\n\
             [opt]\nprotocols = [\"optimal\"]\nseeds_per_axis = 5\nrounds = 3\nmax_evals = 5\n",
        );
        let out = run_opt(&s, &OptOptions::uncached()).unwrap();
        assert_eq!(out.fronts[0].evaluated, 5);
    }

    #[test]
    fn budget_one_past_the_seed_grid_admits_one_refinement() {
        let s = spec(
            "backend = \"exact\"\nmetric = \"two-way\"\n\
             [opt]\nprotocols = [\"optimal\"]\nseeds_per_axis = 5\nrounds = 3\nmax_evals = 6\n",
        );
        let out = run_opt(&s, &OptOptions::uncached()).unwrap();
        assert_eq!(out.fronts[0].evaluated, 6);
    }

    #[test]
    fn censor_counts_are_attributed_to_rounds() {
        // the slotted worst-case search censors every candidate; the
        // per-round breakdown must tile the total
        let s = spec(
            "backend = \"exact\"\nmetric = \"one-way\"\npercentiles = false\n\
             [opt]\nprotocols = [\"code-based\"]\nseeds_per_axis = 2\nrounds = 1\neta_min = 0.05\n",
        );
        let out = run_opt(&s, &OptOptions::uncached()).unwrap();
        let f = &out.fronts[0];
        assert!(f.errors > 0);
        assert!(!f.censored_rounds.is_empty());
        let mut total: BTreeMap<&'static str, usize> = BTreeMap::new();
        for round in &f.censored_rounds {
            for (reason, count) in round {
                *total.entry(reason).or_insert(0) += count;
            }
        }
        assert_eq!(total, f.censored, "rounds tile the total censor counts");
    }

    #[test]
    fn eta_range_restricts_the_search() {
        let s = spec(
            "backend = \"exact\"\nmetric = \"two-way\"\n\
             [opt]\nprotocols = [\"optimal\"]\nseeds_per_axis = 4\nrounds = 1\n\
             eta_min = 0.04\neta_max = 0.10\n",
        );
        let out = run_opt(&s, &OptOptions::uncached()).unwrap();
        for p in &out.fronts[0].front {
            assert!((0.04..=0.10).contains(&p.eta), "eta {}", p.eta);
        }
        // a range outside the declared space is an error, not an empty front
        let bad = spec(
            "backend = \"exact\"\nmetric = \"two-way\"\n\
             [opt]\nprotocols = [\"optimal\"]\neta_min = 0.6\neta_max = 0.9\n",
        );
        assert!(run_opt(&bad, &OptOptions::uncached())
            .unwrap_err()
            .to_string()
            .contains("does not intersect"));
    }
}
