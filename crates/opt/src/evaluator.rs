//! Candidate evaluation behind one trait, on `nd-sweep`'s machinery.
//!
//! Every candidate evaluation *is* an `nd-sweep` job: the candidate's
//! parameters become a fully resolved [`Job`], executed by the same
//! backend code paths (`exact` coverage analysis, `montecarlo` pairwise
//! simulation, `netsim` cohorts) and addressed by the same content hash —
//! so optimizer evaluations share the on-disk result cache with ordinary
//! sweeps of the same points, and a re-run of the same search is served
//! entirely from cache.
//!
//! The three evaluators differ only in which backend the embedded spec
//! selects and which metric key realizes the latency objective; the
//! [`Evaluator`] trait carries exactly that.

use crate::spec::{Objective, OptSpec};
use nd_core::time::Tick;
use nd_sweep::grid::Job;
use nd_sweep::spec::Backend;
use nd_sweep::{Metric, ScenarioSpec, SpecError};
use std::collections::BTreeMap;

/// One fully resolved candidate configuration of a protocol.
#[derive(Clone, Debug, PartialEq)]
pub struct Candidate {
    /// Registry protocol name.
    pub protocol: String,
    /// Total duty-cycle target η.
    pub eta: f64,
    /// Slot length in µs (slotted protocols only).
    pub slot_us: Option<f64>,
}

/// A candidate's evaluation: the two objectives plus the backend's full
/// metric row.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// The evaluated candidate.
    pub candidate: Candidate,
    /// Nominal total duty cycle η = γ + αβ of the *constructed* schedule
    /// (which may differ from the requested η by integer rounding) — the
    /// x-axis of the front, and the budget `best --budget` filters on.
    pub duty_cycle: f64,
    /// The latency objective value, seconds.
    pub latency_s: f64,
    /// Every metric the backend produced.
    pub metrics: BTreeMap<String, f64>,
    /// Whether this evaluation was served from the result cache.
    pub from_cache: bool,
}

/// A latency evaluator for candidates of one search.
///
/// Implementations are thin façades over a configured scenario spec; the
/// split between [`Evaluator::run`] (produce the raw metric row,
/// expensive) and [`Evaluator::interpret`] (extract objectives, cheap)
/// lets the optimizer serve `run` from the content-addressed cache.
pub trait Evaluator: Sync {
    /// The backend name (`exact` | `montecarlo` | `netsim`).
    fn backend_name(&self) -> &'static str;

    /// The metric key realizing the latency objective.
    fn latency_metric(&self) -> &'static str;

    /// The candidate's content-addressed cache key (shared with
    /// `nd-sweep` jobs of the same resolved parameters).
    fn cache_key(&self, cand: &Candidate) -> String;

    /// Compute the candidate's raw metric row (no cache involved).
    fn run(&self, cand: &Candidate) -> Result<BTreeMap<String, f64>, String>;

    /// Turn a metric row (fresh or cached) into an [`Evaluation`]:
    /// extract the objectives and screen out candidates whose result does
    /// not support a worst-case claim (e.g. trials that failed to
    /// discover within the horizon).
    fn interpret(
        &self,
        cand: &Candidate,
        metrics: BTreeMap<String, f64>,
        from_cache: bool,
    ) -> Result<Evaluation, String>;
}

/// The shared implementation: a configured scenario spec plus the
/// objective's metric key.
struct Harness {
    spec: ScenarioSpec,
    latency_key: &'static str,
    nodes: u32,
    /// The failure mass the objective tolerates: a `q`-percentile is
    /// defined as long as at most `1 − q` of the probability mass never
    /// discovers; the worst case tolerates none.
    allowed_failure: f64,
}

fn allowed_failure(objective: Objective) -> f64 {
    match objective {
        Objective::Worst => 0.0,
        Objective::P95 => 0.05,
        Objective::P99 => 0.01,
    }
}

impl Harness {
    /// The candidate as a fully resolved sweep job. Axes the optimizer
    /// does not search take the sweep grammar's defaults (no drift, no
    /// faults, ideal turnaround, random phases, no churn).
    fn job(&self, cand: &Candidate) -> Job {
        Job {
            index: 0,
            protocol: cand.protocol.clone(),
            eta: cand.eta,
            slot: cand
                .slot_us
                .map(|us| Tick::from_secs_f64(us * 1e-6))
                .unwrap_or_else(|| Tick::from_millis(1)),
            drift_ppm: 0,
            drop_probability: 0.0,
            turnaround: Tick::ZERO,
            phase: None,
            ratio: 1.0,
            nodes: self.nodes,
            churn: 0.0,
            // the netsim backend reads the per-job collision flag; wire it
            // to the spec-wide [sim] switch so one knob governs all three
            // evaluators
            collision: self.spec.sim.collisions,
        }
    }

    fn run(&self, cand: &Candidate) -> Result<BTreeMap<String, f64>, String> {
        nd_sweep::engine::execute_job(&self.job(cand), &self.spec)
    }

    fn interpret(
        &self,
        cand: &Candidate,
        metrics: BTreeMap<String, f64>,
        from_cache: bool,
    ) -> Result<Evaluation, String> {
        // probability mass that never discovers censors the latency
        // statistic: the worst case is then unknown (≥ horizon), and a
        // q-percentile conditioned on discovery only stands for the
        // unconditional one while the failure mass stays within 1 − q
        let allowed = self.allowed_failure;
        if let Some(&f) = metrics.get("undiscovered_prob") {
            if f > allowed + 1e-12 {
                return Err(format!(
                    "{f:.4} of offsets are never discovered (objective tolerates {allowed})"
                ));
            }
        }
        if let Some(&f) = metrics.get("failure_rate") {
            if f > allowed + 1e-12 {
                return Err(format!(
                    "{f:.4} of trials failed to discover within the horizon \
                     (objective tolerates {allowed})"
                ));
            }
        }
        if let Some(&f) = metrics.get("pair_discovered_frac") {
            if f < 1.0 - allowed - 1e-12 {
                return Err(format!(
                    "only {f:.4} of node pairs discovered within the horizon \
                     (objective tolerates {allowed} missing)"
                ));
            }
        }
        let latency_s = *metrics
            .get(self.latency_key)
            .ok_or_else(|| format!("backend produced no `{}` metric", self.latency_key))?;
        if !(latency_s.is_finite() && latency_s >= 0.0) {
            return Err(format!(
                "latency metric `{}` = {latency_s}",
                self.latency_key
            ));
        }
        let sched = nd_sweep::engine::build_schedule(&self.job(cand), &self.spec)?;
        Ok(Evaluation {
            candidate: cand.clone(),
            duty_cycle: sched.eta(self.spec.radio.alpha),
            latency_s,
            metrics,
            from_cache,
        })
    }

    fn cache_key(&self, cand: &Candidate) -> String {
        self.job(cand).content_hash(&self.spec)
    }
}

macro_rules! facade {
    ($name:ident, $backend:literal) => {
        impl Evaluator for $name {
            fn backend_name(&self) -> &'static str {
                $backend
            }
            fn latency_metric(&self) -> &'static str {
                self.0.latency_key
            }
            fn cache_key(&self, cand: &Candidate) -> String {
                self.0.cache_key(cand)
            }
            fn run(&self, cand: &Candidate) -> Result<BTreeMap<String, f64>, String> {
                self.0.run(cand)
            }
            fn interpret(
                &self,
                cand: &Candidate,
                metrics: BTreeMap<String, f64>,
                from_cache: bool,
            ) -> Result<Evaluation, String> {
                self.0.interpret(cand, metrics, from_cache)
            }
        }
    };
}

/// Exact coverage-map analysis: nanosecond-precise worst case (or exact
/// distribution percentiles), no sampling error.
pub struct ExactEvaluator(Harness);
facade!(ExactEvaluator, "exact");

/// Pairwise Monte-Carlo simulation: the objective over randomized-phase
/// trials.
pub struct MonteCarloEvaluator(Harness);
facade!(MonteCarloEvaluator, "montecarlo");

/// N-node cohort simulation: the objective over all pairs of a contending
/// cohort.
pub struct NetsimEvaluator(Harness);
facade!(NetsimEvaluator, "netsim");

/// Build the evaluator an opt spec asks for. The embedded scenario spec
/// is the opt spec's base; for the exact backend, percentile computation
/// is enabled exactly when the objective needs it.
pub fn evaluator_for(spec: &OptSpec) -> Result<Box<dyn Evaluator>, SpecError> {
    spec.validate()?;
    let mut base = spec.base.clone();
    let objective = spec.objective;
    Ok(match base.backend {
        Backend::Exact => {
            base.percentiles = objective != Objective::Worst;
            let latency_key = match (objective, base.metric) {
                (Objective::Worst, Metric::TwoWay) => "two_way_worst_s",
                (Objective::Worst, _) => "worst_s",
                (Objective::P95, _) => "p95_s",
                (Objective::P99, _) => "p99_s",
            };
            Box::new(ExactEvaluator(Harness {
                spec: base,
                latency_key,
                nodes: spec.nodes,
                allowed_failure: allowed_failure(objective),
            }))
        }
        Backend::MonteCarlo => {
            let latency_key = match objective {
                Objective::Worst => "max_s",
                Objective::P95 => "p95_s",
                Objective::P99 => "p99_s",
            };
            Box::new(MonteCarloEvaluator(Harness {
                spec: base,
                latency_key,
                nodes: spec.nodes,
                allowed_failure: allowed_failure(objective),
            }))
        }
        Backend::Netsim => {
            let latency_key = match objective {
                Objective::Worst => "pair_max_s",
                Objective::P95 => "pair_p95_s",
                Objective::P99 => unreachable!("rejected by OptSpec::validate"),
            };
            Box::new(NetsimEvaluator(Harness {
                spec: base,
                latency_key,
                nodes: spec.nodes,
                allowed_failure: allowed_failure(objective),
            }))
        }
        Backend::Bounds => unreachable!("rejected by OptSpec::validate"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::OptSpec;

    fn opt_spec(toml: &str) -> OptSpec {
        OptSpec::from_toml_str(toml).unwrap()
    }

    fn cand(eta: f64) -> Candidate {
        Candidate {
            protocol: "optimal-slotless".into(),
            eta,
            slot_us: None,
        }
    }

    #[test]
    fn exact_evaluator_recovers_the_bound_objective() {
        let spec = opt_spec(
            "backend = \"exact\"\nmetric = \"two-way\"\n[opt]\nprotocols = [\"optimal\"]\n",
        );
        let ev = evaluator_for(&spec).unwrap();
        assert_eq!(ev.backend_name(), "exact");
        assert_eq!(ev.latency_metric(), "two_way_worst_s");
        let c = cand(0.05);
        let metrics = ev.run(&c).unwrap();
        let e = ev.interpret(&c, metrics, false).unwrap();
        let bound = nd_core::bounds::symmetric_bound(1.0, 36e-6, 0.05);
        assert!(
            (e.latency_s - bound).abs() / bound < 0.02,
            "{}",
            e.latency_s
        );
        assert!((e.duty_cycle - 0.05).abs() < 0.003, "{}", e.duty_cycle);
        assert!(!e.from_cache);
    }

    #[test]
    fn cache_keys_match_equivalent_sweep_jobs() {
        // the optimizer's evaluations and a plain sweep of the same point
        // must share cache entries: identical content hash
        let spec = opt_spec(
            "backend = \"exact\"\nmetric = \"two-way\"\n[opt]\nprotocols = [\"optimal\"]\n",
        );
        let ev = evaluator_for(&spec).unwrap();
        let sweep = nd_sweep::ScenarioSpec::from_toml_str(
            "backend = \"exact\"\nmetric = \"two-way\"\npercentiles = false\n\
             [grid]\nprotocol = [\"optimal-slotless\"]\neta = [0.05]\nslot_us = [1000]\n",
        )
        .unwrap();
        let job = &nd_sweep::expand(&sweep)[0];
        assert_eq!(ev.cache_key(&cand(0.05)), job.content_hash(&sweep));
    }

    #[test]
    fn failure_screening_rejects_censored_candidates() {
        let spec = opt_spec(
            "backend = \"exact\"\nmetric = \"two-way\"\n[opt]\nprotocols = [\"optimal\"]\n",
        );
        let ev = evaluator_for(&spec).unwrap();
        let c = cand(0.05);
        let mut metrics = BTreeMap::new();
        metrics.insert("failure_rate".to_string(), 0.25);
        metrics.insert("two_way_worst_s".to_string(), 1.0);
        assert!(ev
            .interpret(&c, metrics, false)
            .unwrap_err()
            .contains("failed"));
        let mut metrics = BTreeMap::new();
        metrics.insert("pair_discovered_frac".to_string(), 0.9);
        assert!(ev
            .interpret(&c, metrics, false)
            .unwrap_err()
            .contains("pairs"));
    }

    #[test]
    fn montecarlo_and_netsim_latency_keys() {
        let mc = opt_spec(
            "backend = \"montecarlo\"\n[opt]\nprotocols = [\"optimal\"]\nobjective = \"p95\"\n",
        );
        assert_eq!(evaluator_for(&mc).unwrap().latency_metric(), "p95_s");
        let net = opt_spec("backend = \"netsim\"\n[opt]\nprotocols = [\"optimal\"]\n");
        let ev = evaluator_for(&net).unwrap();
        assert_eq!(ev.backend_name(), "netsim");
        assert_eq!(ev.latency_metric(), "pair_max_s");
    }
}
