//! Candidate evaluation behind one trait, on `nd-sweep`'s machinery.
//!
//! Every candidate evaluation *is* an `nd-sweep` job: the candidate's
//! parameters become a fully resolved [`Job`], executed by the same
//! backend code paths (`exact` coverage analysis, `montecarlo` pairwise
//! simulation, `netsim` cohorts) and addressed by the same content hash —
//! so optimizer evaluations share the on-disk result cache with ordinary
//! sweeps of the same points, and a re-run of the same search is served
//! entirely from cache.
//!
//! The three evaluators differ only in which backend the embedded spec
//! selects and which metric key realizes the latency objective; the
//! [`Evaluator`] trait carries exactly that.

use crate::spec::{Objective, OptSpec};
use nd_core::time::Tick;
use nd_sweep::grid::Job;
use nd_sweep::spec::Backend;
use nd_sweep::{Metric, ScenarioSpec, SpecError};
use std::collections::BTreeMap;

/// One fully resolved candidate configuration of a protocol.
#[derive(Clone, Debug, PartialEq)]
pub struct Candidate {
    /// Registry protocol name.
    pub protocol: String,
    /// Role A's duty-cycle target η (η_E in a pair search).
    pub eta: f64,
    /// Role A's slot length in µs (slotted protocols only).
    pub slot_us: Option<f64>,
    /// Role B's duty-cycle target η_F (pair searches only; `None` =
    /// symmetric).
    pub eta_b: Option<f64>,
    /// Role B's slot length in µs (pair searches of slotted protocols).
    pub slot_us_b: Option<f64>,
}

impl Candidate {
    /// A symmetric (single-role) candidate.
    pub fn symmetric(protocol: impl Into<String>, eta: f64, slot_us: Option<f64>) -> Self {
        Candidate {
            protocol: protocol.into(),
            eta,
            slot_us,
            eta_b: None,
            slot_us_b: None,
        }
    }
}

/// A candidate's evaluation: the two objectives plus the backend's full
/// metric row.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// The evaluated candidate.
    pub candidate: Candidate,
    /// The budget objective — the x-axis of the front, and what
    /// `best --budget` filters on. Symmetric search: the nominal duty
    /// cycle η = γ + αβ of the *constructed* schedule (which may differ
    /// from the requested η by integer rounding). Pair search: the total
    /// budget η_E + η_F across both constructed schedules.
    pub duty_cycle: f64,
    /// Role B's constructed duty cycle η_F (pair searches only; role A's
    /// is then `duty_cycle − duty_cycle_b`).
    pub duty_cycle_b: Option<f64>,
    /// The latency objective value, seconds.
    pub latency_s: f64,
    /// Every metric the backend produced.
    pub metrics: BTreeMap<String, f64>,
    /// Whether this evaluation was served from the result cache.
    pub from_cache: bool,
}

/// A latency evaluator for candidates of one search.
///
/// Implementations are thin façades over a configured scenario spec; the
/// split between [`Evaluator::run`] (produce the raw metric row,
/// expensive) and [`Evaluator::interpret`] (extract objectives, cheap)
/// lets the optimizer serve `run` from the content-addressed cache.
pub trait Evaluator: Sync {
    /// The backend name (`exact` | `montecarlo` | `netsim`).
    fn backend_name(&self) -> &'static str;

    /// The metric key realizing the latency objective.
    fn latency_metric(&self) -> &'static str;

    /// The candidate's content-addressed cache key (shared with
    /// `nd-sweep` jobs of the same resolved parameters).
    fn cache_key(&self, cand: &Candidate) -> String;

    /// Compute the candidate's raw metric row (no cache involved).
    fn run(&self, cand: &Candidate) -> Result<BTreeMap<String, f64>, String>;

    /// Turn a metric row (fresh or cached) into an [`Evaluation`]:
    /// extract the objectives and screen out candidates whose result does
    /// not support a worst-case claim (e.g. trials that failed to
    /// discover within the horizon).
    fn interpret(
        &self,
        cand: &Candidate,
        metrics: BTreeMap<String, f64>,
        from_cache: bool,
    ) -> Result<Evaluation, String>;
}

/// The shared implementation: a configured scenario spec plus the
/// objective's metric key.
struct Harness {
    spec: ScenarioSpec,
    latency_key: &'static str,
    nodes: u32,
    /// Role-B cohort share for pair searches on the netsim evaluator
    /// (an even split); 0.0 for symmetric searches.
    mix: f64,
    /// The failure mass the objective tolerates: a `q`-percentile is
    /// defined as long as at most `1 − q` of the probability mass never
    /// discovers; the worst case tolerates none.
    allowed_failure: f64,
}

fn allowed_failure(objective: Objective) -> f64 {
    match objective {
        Objective::Worst => 0.0,
        Objective::P95 => 0.05,
        Objective::P99 => 0.01,
    }
}

impl Harness {
    /// The candidate as a fully resolved sweep job. Axes the optimizer
    /// does not search take the sweep grammar's defaults (no drift, no
    /// faults, ideal turnaround, random phases, no churn).
    fn job(&self, cand: &Candidate) -> Job {
        Job {
            index: 0,
            protocol: cand.protocol.clone(),
            eta: cand.eta,
            slot: cand
                .slot_us
                .map(|us| Tick::from_secs_f64(us * 1e-6))
                .unwrap_or_else(|| Tick::from_millis(1)),
            // pair candidates put role B on device 1 (pairwise backends)
            // or on the `mix` share of the cohort (netsim)
            protocol_b: None,
            eta_b: cand.eta_b,
            slot_b: cand.slot_us_b.map(|us| Tick::from_secs_f64(us * 1e-6)),
            mix: if cand.eta_b.is_some() || cand.slot_us_b.is_some() {
                self.mix
            } else {
                0.0
            },
            drift_ppm: 0,
            drop_probability: 0.0,
            turnaround: Tick::ZERO,
            phase: None,
            ratio: 1.0,
            nodes: self.nodes,
            churn: 0.0,
            // the netsim backend reads the per-job collision flag; wire it
            // to the spec-wide [sim] switch so one knob governs all three
            // evaluators
            collision: self.spec.sim.collisions,
        }
    }

    fn run(&self, cand: &Candidate) -> Result<BTreeMap<String, f64>, String> {
        nd_sweep::engine::execute_job(&self.job(cand), &self.spec)
    }

    fn interpret(
        &self,
        cand: &Candidate,
        metrics: BTreeMap<String, f64>,
        from_cache: bool,
    ) -> Result<Evaluation, String> {
        // probability mass that never discovers censors the latency
        // statistic: the worst case is then unknown (≥ horizon), and a
        // q-percentile conditioned on discovery only stands for the
        // unconditional one while the failure mass stays within 1 − q
        let allowed = self.allowed_failure;
        if let Some(&f) = metrics.get("undiscovered_prob") {
            if f > allowed + 1e-12 {
                return Err(format!(
                    "{f:.4} of offsets are never discovered (objective tolerates {allowed})"
                ));
            }
        }
        if let Some(&f) = metrics.get("failure_rate") {
            if f > allowed + 1e-12 {
                return Err(format!(
                    "{f:.4} of trials failed to discover within the horizon \
                     (objective tolerates {allowed})"
                ));
            }
        }
        // a mixed pair-mode cohort is judged on its cross-role pairs: the
        // coupled Theorem 5.7 construction only guarantees cross
        // discovery, so same-role pairs must neither censor nor pass it
        let discovered_key = if self.mix > 0.0 {
            "cross_discovered_frac"
        } else {
            "pair_discovered_frac"
        };
        if let Some(&f) = metrics.get(discovered_key) {
            if f < 1.0 - allowed - 1e-12 {
                return Err(format!(
                    "only {f:.4} of node pairs discovered within the horizon \
                     (objective tolerates {allowed} missing)"
                ));
            }
        }
        let latency_s = *metrics
            .get(self.latency_key)
            .ok_or_else(|| format!("backend produced no `{}` metric", self.latency_key))?;
        if !(latency_s.is_finite() && latency_s >= 0.0) {
            return Err(format!(
                "latency metric `{}` = {latency_s}",
                self.latency_key
            ));
        }
        let job = self.job(cand);
        let alpha = self.spec.radio.alpha;
        let (dc, dc_b) = if job.has_role_b() {
            // pair search: the front runs over the total budget η_E + η_F
            let (a, b) = nd_sweep::engine::build_role_schedules(&job, &self.spec)?;
            let (dc_a, dc_b) = (a.eta(alpha), b.eta(alpha));
            (dc_a + dc_b, Some(dc_b))
        } else {
            let sched = nd_sweep::engine::build_schedule(&job, &self.spec)?;
            (sched.eta(alpha), None)
        };
        Ok(Evaluation {
            candidate: cand.clone(),
            duty_cycle: dc,
            duty_cycle_b: dc_b,
            latency_s,
            metrics,
            from_cache,
        })
    }

    fn cache_key(&self, cand: &Candidate) -> String {
        self.job(cand).content_hash(&self.spec)
    }
}

macro_rules! facade {
    ($name:ident, $backend:literal) => {
        impl Evaluator for $name {
            fn backend_name(&self) -> &'static str {
                $backend
            }
            fn latency_metric(&self) -> &'static str {
                self.0.latency_key
            }
            fn cache_key(&self, cand: &Candidate) -> String {
                self.0.cache_key(cand)
            }
            fn run(&self, cand: &Candidate) -> Result<BTreeMap<String, f64>, String> {
                self.0.run(cand)
            }
            fn interpret(
                &self,
                cand: &Candidate,
                metrics: BTreeMap<String, f64>,
                from_cache: bool,
            ) -> Result<Evaluation, String> {
                self.0.interpret(cand, metrics, from_cache)
            }
        }
    };
}

/// Exact coverage-map analysis: nanosecond-precise worst case (or exact
/// distribution percentiles), no sampling error.
pub struct ExactEvaluator(Harness);
facade!(ExactEvaluator, "exact");

/// Pairwise Monte-Carlo simulation: the objective over randomized-phase
/// trials.
pub struct MonteCarloEvaluator(Harness);
facade!(MonteCarloEvaluator, "montecarlo");

/// N-node cohort simulation: the objective over all pairs of a contending
/// cohort.
pub struct NetsimEvaluator(Harness);
facade!(NetsimEvaluator, "netsim");

/// Build the evaluator an opt spec asks for. The embedded scenario spec
/// is the opt spec's base; for the exact backend, percentile computation
/// is enabled exactly when the objective needs it.
pub fn evaluator_for(spec: &OptSpec) -> Result<Box<dyn Evaluator>, SpecError> {
    spec.validate()?;
    let mut base = spec.base.clone();
    let objective = spec.objective;
    // pair searches on the cohort backend split the cohort evenly
    // between the two roles; the pairwise backends put role B on
    // device 1 and keep `mix` out of their job hashes
    let mix = if spec.pair && base.backend == Backend::Netsim {
        0.5
    } else {
        0.0
    };
    Ok(match base.backend {
        Backend::Exact => {
            base.percentiles = objective != Objective::Worst;
            let latency_key = match (objective, base.metric) {
                (Objective::Worst, Metric::TwoWay) => "two_way_worst_s",
                (Objective::Worst, _) => "worst_s",
                (Objective::P95, _) => "p95_s",
                (Objective::P99, _) => "p99_s",
            };
            Box::new(ExactEvaluator(Harness {
                spec: base,
                latency_key,
                nodes: spec.nodes,
                mix,
                allowed_failure: allowed_failure(objective),
            }))
        }
        Backend::MonteCarlo => {
            let latency_key = match objective {
                Objective::Worst => "max_s",
                Objective::P95 => "p95_s",
                Objective::P99 => "p99_s",
            };
            Box::new(MonteCarloEvaluator(Harness {
                spec: base,
                latency_key,
                nodes: spec.nodes,
                mix,
                allowed_failure: allowed_failure(objective),
            }))
        }
        Backend::Netsim => {
            // pair mode optimizes the cross-role slice of the mixed
            // cohort — the latencies the (η_E, η_F) front is about —
            // against the Theorem 5.7 bound; same-role pairs have no
            // cross-role guarantee and would bias the objective
            let latency_key = match (objective, spec.pair) {
                (Objective::Worst, false) => "pair_max_s",
                (Objective::P95, false) => "pair_p95_s",
                (Objective::Worst, true) => "cross_max_s",
                (Objective::P95, true) => "cross_p95_s",
                (Objective::P99, _) => unreachable!("rejected by OptSpec::validate"),
            };
            Box::new(NetsimEvaluator(Harness {
                spec: base,
                latency_key,
                nodes: spec.nodes,
                mix,
                allowed_failure: allowed_failure(objective),
            }))
        }
        Backend::Bounds => unreachable!("rejected by OptSpec::validate"),
    })
}

/// The reduced-budget evaluator for adaptive screening, or `None` when
/// screening cannot help: adaptive is off, the backend is exact (its
/// results do not depend on a trial count, so a screening pass would just
/// pay for every candidate twice), or the resolved screening budget is
/// not actually smaller than the full one.
///
/// The screening evaluator is built from a clone of the spec with
/// `sim.trials` reduced ([`ScenarioSpec::with_trials`]), so its jobs live
/// in their own content-hash universe: distinct cache keys, distinct
/// derived RNG streams, zero interference with full-budget results.
pub fn screening_evaluator(spec: &OptSpec) -> Result<Option<Box<dyn Evaluator>>, SpecError> {
    if !spec.adaptive.enabled || spec.base.backend == Backend::Exact {
        return Ok(None);
    }
    let full = spec.base.sim.trials;
    let screen = spec.adaptive.resolved_screen_trials(full);
    if screen >= full {
        return Ok(None);
    }
    let mut reduced = spec.clone();
    reduced.base = spec.base.with_trials(screen);
    Ok(Some(evaluator_for(&reduced)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::OptSpec;

    fn opt_spec(toml: &str) -> OptSpec {
        OptSpec::from_toml_str(toml).unwrap()
    }

    fn cand(eta: f64) -> Candidate {
        Candidate::symmetric("optimal-slotless", eta, None)
    }

    #[test]
    fn exact_evaluator_recovers_the_bound_objective() {
        let spec = opt_spec(
            "backend = \"exact\"\nmetric = \"two-way\"\n[opt]\nprotocols = [\"optimal\"]\n",
        );
        let ev = evaluator_for(&spec).unwrap();
        assert_eq!(ev.backend_name(), "exact");
        assert_eq!(ev.latency_metric(), "two_way_worst_s");
        let c = cand(0.05);
        let metrics = ev.run(&c).unwrap();
        let e = ev.interpret(&c, metrics, false).unwrap();
        let bound = nd_core::bounds::symmetric_bound(1.0, 36e-6, 0.05);
        assert!(
            (e.latency_s - bound).abs() / bound < 0.02,
            "{}",
            e.latency_s
        );
        assert!((e.duty_cycle - 0.05).abs() < 0.003, "{}", e.duty_cycle);
        assert!(!e.from_cache);
    }

    #[test]
    fn cache_keys_match_equivalent_sweep_jobs() {
        // the optimizer's evaluations and a plain sweep of the same point
        // must share cache entries: identical content hash
        let spec = opt_spec(
            "backend = \"exact\"\nmetric = \"two-way\"\n[opt]\nprotocols = [\"optimal\"]\n",
        );
        let ev = evaluator_for(&spec).unwrap();
        let sweep = nd_sweep::ScenarioSpec::from_toml_str(
            "backend = \"exact\"\nmetric = \"two-way\"\npercentiles = false\n\
             [grid]\nprotocol = [\"optimal-slotless\"]\neta = [0.05]\nslot_us = [1000]\n",
        )
        .unwrap();
        let job = &nd_sweep::expand(&sweep)[0];
        assert_eq!(ev.cache_key(&cand(0.05)), job.content_hash(&sweep));
    }

    #[test]
    fn failure_screening_rejects_censored_candidates() {
        let spec = opt_spec(
            "backend = \"exact\"\nmetric = \"two-way\"\n[opt]\nprotocols = [\"optimal\"]\n",
        );
        let ev = evaluator_for(&spec).unwrap();
        let c = cand(0.05);
        let mut metrics = BTreeMap::new();
        metrics.insert("failure_rate".to_string(), 0.25);
        metrics.insert("two_way_worst_s".to_string(), 1.0);
        assert!(ev
            .interpret(&c, metrics, false)
            .unwrap_err()
            .contains("failed"));
        let mut metrics = BTreeMap::new();
        metrics.insert("pair_discovered_frac".to_string(), 0.9);
        assert!(ev
            .interpret(&c, metrics, false)
            .unwrap_err()
            .contains("pairs"));
    }

    #[test]
    fn pair_candidates_evaluate_against_theorem_5_7() {
        let spec = opt_spec(
            "backend = \"exact\"\nmetric = \"two-way\"\n\
             [opt]\nprotocols = [\"optimal\"]\npair = true\n",
        );
        let ev = evaluator_for(&spec).unwrap();
        let c = Candidate {
            protocol: "optimal-slotless".into(),
            eta: 0.08,
            slot_us: None,
            eta_b: Some(0.02),
            slot_us_b: None,
        };
        let metrics = ev.run(&c).unwrap();
        let e = ev.interpret(&c, metrics, false).unwrap();
        // the x-axis is the total budget, with role B's share attached
        assert!((e.duty_cycle - 0.10).abs() < 0.005, "{}", e.duty_cycle);
        let dc_b = e.duty_cycle_b.unwrap();
        assert!((dc_b - 0.02).abs() < 0.003);
        let bound = nd_core::bounds::asymmetric_bound(1.0, 36e-6, e.duty_cycle - dc_b, dc_b);
        assert!(
            (e.latency_s - bound).abs() / bound < 0.01,
            "latency {} vs Theorem 5.7 bound {bound}",
            e.latency_s
        );
    }

    #[test]
    fn netsim_pair_candidates_run_mixed_cohorts() {
        // pair mode on the cohort evaluator: the job carries mix = 0.5,
        // so the cohort splits evenly between the two roles — and the
        // mix enters the cache key (a different nodes/mix must not
        // collide with the pairwise evaluation of the same candidate)
        let net = opt_spec(
            "backend = \"netsim\"\nmetric = \"two-way\"\n\
             [opt]\nprotocols = [\"optimal\"]\npair = true\nnodes = 4\n",
        );
        let ev = evaluator_for(&net).unwrap();
        let c = Candidate {
            protocol: "optimal-slotless".into(),
            eta: 0.08,
            slot_us: None,
            eta_b: Some(0.02),
            slot_us_b: None,
        };
        let exact = opt_spec(
            "backend = \"exact\"\nmetric = \"two-way\"\n\
             [opt]\nprotocols = [\"optimal\"]\npair = true\n",
        );
        let exact_ev = evaluator_for(&exact).unwrap();
        assert_ne!(ev.cache_key(&c), exact_ev.cache_key(&c));
        // the pair objective reads the cross-role slice, not the cohort-
        // wide distribution the same-role pairs dominate
        assert_eq!(ev.latency_metric(), "cross_max_s");
        let metrics = ev.run(&c).unwrap();
        assert!(metrics.contains_key("cross_pairs"));
        assert!(metrics["cross_pairs"] > 0.0, "mixed cohort has cross pairs");
        assert!(metrics.contains_key("cross_max_s"));
        assert!(metrics.contains_key("cross_p95_s"));
        // censoring keys off cross_discovered_frac for pair cohorts:
        // an undiscovered same-role pair must not censor the candidate
        let mut doctored = metrics.clone();
        doctored.insert("pair_discovered_frac".to_string(), 0.5);
        doctored.insert("cross_discovered_frac".to_string(), 1.0);
        doctored.insert("cross_max_s".to_string(), 1.0);
        assert!(ev.interpret(&c, doctored, false).is_ok());
    }

    #[test]
    fn screening_evaluator_gates_and_rehashes() {
        // off by default
        let plain = opt_spec("backend = \"montecarlo\"\n[opt]\nprotocols = [\"optimal\"]\n");
        assert!(screening_evaluator(&plain).unwrap().is_none());
        // structurally a no-op on the exact backend
        let exact =
            opt_spec("backend = \"exact\"\n[opt]\nprotocols = [\"optimal\"]\n[opt.adaptive]\n");
        assert!(screening_evaluator(&exact).unwrap().is_none());
        // no-op when the screen budget cannot undercut the full one
        let tiny = opt_spec(
            "backend = \"montecarlo\"\n[sim]\ntrials = 2\n\
             [opt]\nprotocols = [\"optimal\"]\n[opt.adaptive]\nscreen_trials = 50\n",
        );
        assert!(screening_evaluator(&tiny).unwrap().is_none());
        // enabled: a real evaluator whose jobs hash in their own universe
        let on = opt_spec(
            "backend = \"montecarlo\"\n[sim]\ntrials = 40\n\
             [opt]\nprotocols = [\"optimal\"]\n[opt.adaptive]\nscreen_trials = 4\n",
        );
        let screen = screening_evaluator(&on).unwrap().expect("screening on");
        let full = evaluator_for(&on).unwrap();
        assert_eq!(screen.backend_name(), "montecarlo");
        let c = cand(0.05);
        assert_ne!(screen.cache_key(&c), full.cache_key(&c));
    }

    #[test]
    fn montecarlo_and_netsim_latency_keys() {
        let mc = opt_spec(
            "backend = \"montecarlo\"\n[opt]\nprotocols = [\"optimal\"]\nobjective = \"p95\"\n",
        );
        assert_eq!(evaluator_for(&mc).unwrap().latency_metric(), "p95_s");
        let net = opt_spec("backend = \"netsim\"\n[opt]\nprotocols = [\"optimal\"]\n");
        let ev = evaluator_for(&net).unwrap();
        assert_eq!(ev.backend_name(), "netsim");
        assert_eq!(ev.latency_metric(), "pair_max_s");
    }
}
