//! # nd-opt — Pareto-front optimization of discovery schedules
//!
//! The paper's headline result is a *frontier*: for every duty-cycle
//! budget there is a provably minimal worst-case discovery latency
//! (`nd_core::bounds`), and well-parameterized schedules reach it. This
//! crate searches for that frontier empirically, per protocol:
//!
//! 1. **Parameter spaces** — each registry protocol declares what may be
//!    tuned ([`nd_protocols::ParamSpace`]: typed ranges + feasibility
//!    constraints);
//! 2. **Evaluators** ([`evaluator`]) — exact coverage analysis,
//!    Monte-Carlo and N-node netsim behind one [`Evaluator`] trait, each
//!    evaluation an ordinary `nd-sweep` job (same thread pool, same
//!    content-addressed result cache);
//! 3. **The optimizer** ([`optimizer`]) — coarse grid seeding plus
//!    adaptive refinement around the current front over (duty cycle,
//!    latency), both minimized ([`pareto`]);
//! 4. **Gap reporting** — every front point annotated with its distance
//!    to the closed-form optimality bound at its duty cycle, which is how
//!    the paper's comparison figures are built;
//! 5. **Specs, exports and a CLI** ([`spec`], [`export`], `nd-opt
//!    front`/`best`/`gap`) — TOML specs in the sweep grammar with an
//!    `[opt]` table, deterministic CSV/JSON.
//!
//! ```
//! use nd_opt::{run_opt, OptOptions, OptSpec};
//!
//! let spec = OptSpec::from_toml_str(r#"
//!     name = "quick"
//!     backend = "exact"
//!     metric = "two-way"
//!     [opt]
//!     protocols = ["optimal"]
//!     seeds_per_axis = 3
//!     rounds = 1
//! "#).unwrap();
//! let out = run_opt(&spec, &OptOptions::uncached()).unwrap();
//! let front = &out.fronts[0].front;
//! assert!(!front.is_empty());
//! // the optimal construction tracks the theoretical bound closely
//! assert!(front.iter().all(|p| p.gap_frac.abs() < 0.05));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod evaluator;
pub mod export;
pub mod optimizer;
pub mod pareto;
pub mod spec;

pub use evaluator::{evaluator_for, screening_evaluator, Candidate, Evaluation, Evaluator};
pub use export::{to_csv, to_json};
pub use optimizer::{
    censor_reason, run_opt, FrontPoint, FrontResult, OptError, OptOptions, OptOutcome,
    CORRUPT_CACHE,
};
pub use pareto::{dominates, front_indices, hypervolume, is_valid_front};
pub use spec::{normalize_protocol, AdaptiveSpec, Objective, OptSpec};
