//! Pareto dominance over (duty cycle, latency) — both minimized.
//!
//! A configuration *dominates* another if it is no worse in both
//! objectives and strictly better in at least one. The *front* is the set
//! of non-dominated configurations: for every duty-cycle budget it
//! contains the lowest-latency configuration found, which is exactly the
//! curve the paper's comparison figures plot against the theoretical
//! optimum.

/// One objective pair: (duty cycle, latency in seconds), both minimized.
pub type Objectives = (f64, f64);

/// Whether `a` dominates `b` (minimization in both components: `a` is no
/// worse in either and strictly better in at least one).
pub fn dominates(a: Objectives, b: Objectives) -> bool {
    a.0 <= b.0 && a.1 <= b.1 && (a.0 < b.0 || a.1 < b.1)
}

/// The indices of the non-dominated points, sorted by duty cycle
/// ascending (and therefore latency strictly descending).
///
/// Duplicates collapse: of several points with identical objectives, the
/// first by input order survives, so the result is deterministic for a
/// deterministic input order. Points with non-finite objectives never
/// make the front.
pub fn front_indices(points: &[Objectives]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len())
        .filter(|&i| points[i].0.is_finite() && points[i].1.is_finite())
        .collect();
    // sort by duty cycle, then latency, then input order (total order →
    // deterministic front for identical objective values)
    order.sort_by(|&a, &b| {
        points[a]
            .0
            .total_cmp(&points[b].0)
            .then(points[a].1.total_cmp(&points[b].1))
            .then(a.cmp(&b))
    });
    let mut front = Vec::new();
    let mut best_latency = f64::INFINITY;
    let mut last_dc = f64::NEG_INFINITY;
    for i in order {
        let (dc, lat) = points[i];
        // same duty cycle: only the first (lowest-latency) survives;
        // higher duty cycle must strictly improve latency to be on the
        // front
        if dc > last_dc && lat < best_latency {
            front.push(i);
            best_latency = lat;
            last_dc = dc;
        }
    }
    front
}

/// Whether a sequence of objective pairs is a valid front: strictly
/// increasing duty cycle with strictly decreasing latency (which implies
/// mutual non-domination).
pub fn is_valid_front(points: &[Objectives]) -> bool {
    points
        .windows(2)
        .all(|w| w[0].0 < w[1].0 && w[0].1 > w[1].1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_is_strict_somewhere() {
        assert!(dominates((0.1, 1.0), (0.2, 1.0)));
        assert!(dominates((0.1, 1.0), (0.1, 2.0)));
        assert!(dominates((0.1, 1.0), (0.2, 2.0)));
        assert!(!dominates((0.1, 1.0), (0.1, 1.0)), "equal: no domination");
        assert!(!dominates((0.1, 2.0), (0.2, 1.0)), "trade-off");
        assert!(!dominates((0.2, 1.0), (0.1, 2.0)), "trade-off, reversed");
    }

    #[test]
    fn front_extracts_the_staircase() {
        //    dc   lat
        let pts = [
            (0.10, 5.0), // on front
            (0.20, 9.0), // dominated by (0.10, 5.0)
            (0.20, 3.0), // on front
            (0.05, 9.0), // on front (cheapest)
            (0.30, 3.0), // dominated by (0.20, 3.0) (same lat, more dc)
            (0.40, 1.0), // on front
        ];
        let front = front_indices(&pts);
        assert_eq!(front, vec![3, 0, 2, 5]);
        let objs: Vec<Objectives> = front.iter().map(|&i| pts[i]).collect();
        assert!(is_valid_front(&objs));
    }

    #[test]
    fn duplicates_collapse_to_first_by_input_order() {
        let pts = [(0.1, 1.0), (0.1, 1.0), (0.1, 1.0)];
        assert_eq!(front_indices(&pts), vec![0]);
    }

    #[test]
    fn non_finite_points_never_front() {
        let pts = [(0.1, f64::NAN), (f64::INFINITY, 1.0), (0.2, 2.0)];
        assert_eq!(front_indices(&pts), vec![2]);
    }

    #[test]
    fn empty_and_single() {
        assert!(front_indices(&[]).is_empty());
        assert_eq!(front_indices(&[(0.1, 1.0)]), vec![0]);
        assert!(is_valid_front(&[]));
        assert!(is_valid_front(&[(0.1, 1.0)]));
        assert!(!is_valid_front(&[(0.1, 1.0), (0.1, 0.5)]));
        assert!(!is_valid_front(&[(0.1, 1.0), (0.2, 1.0)]));
    }
}
