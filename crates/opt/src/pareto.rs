//! Pareto dominance over (duty cycle, latency) — both minimized.
//!
//! A configuration *dominates* another if it is no worse in both
//! objectives and strictly better in at least one. The *front* is the set
//! of non-dominated configurations: for every duty-cycle budget it
//! contains the lowest-latency configuration found, which is exactly the
//! curve the paper's comparison figures plot against the theoretical
//! optimum.

/// One objective pair: (duty cycle, latency in seconds), both minimized.
pub type Objectives = (f64, f64);

/// Whether `a` dominates `b` (minimization in both components: `a` is no
/// worse in either and strictly better in at least one).
pub fn dominates(a: Objectives, b: Objectives) -> bool {
    a.0 <= b.0 && a.1 <= b.1 && (a.0 < b.0 || a.1 < b.1)
}

/// The indices of the non-dominated points, sorted by duty cycle
/// ascending (and therefore latency strictly descending).
///
/// Duplicates collapse: of several points with identical objectives, the
/// first by input order survives, so the result is deterministic for a
/// deterministic input order. Points with non-finite objectives never
/// make the front.
pub fn front_indices(points: &[Objectives]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len())
        .filter(|&i| points[i].0.is_finite() && points[i].1.is_finite())
        .collect();
    // sort by duty cycle, then latency, then input order (total order →
    // deterministic front for identical objective values)
    order.sort_by(|&a, &b| {
        points[a]
            .0
            .total_cmp(&points[b].0)
            .then(points[a].1.total_cmp(&points[b].1))
            .then(a.cmp(&b))
    });
    let mut front = Vec::new();
    let mut best_latency = f64::INFINITY;
    let mut last_dc = f64::NEG_INFINITY;
    for i in order {
        let (dc, lat) = points[i];
        // same duty cycle: only the first (lowest-latency) survives;
        // higher duty cycle must strictly improve latency to be on the
        // front
        if dc > last_dc && lat < best_latency {
            front.push(i);
            best_latency = lat;
            last_dc = dc;
        }
    }
    front
}

/// Whether a sequence of objective pairs is a valid front: strictly
/// increasing duty cycle with strictly decreasing latency (which implies
/// mutual non-domination).
pub fn is_valid_front(points: &[Objectives]) -> bool {
    points
        .windows(2)
        .all(|w| w[0].0 < w[1].0 && w[0].1 > w[1].1)
}

/// Exact 2-D hypervolume of a point set with respect to `reference`: the
/// measure of the region dominated by at least one point and dominating
/// the reference corner (both objectives minimized, so the reference is a
/// worst-acceptable corner at the top right).
///
/// Points at or beyond the reference in either objective contribute
/// nothing; the input need not be a front (dominated points add no
/// volume). For a front this is the staircase area — the standard scalar
/// measure of front quality, and the quantity the optimizer's refinement
/// stage maximizes per evaluation spent.
pub fn hypervolume(points: &[Objectives], reference: Objectives) -> f64 {
    let front = front_indices(points);
    let mut hv = 0.0;
    // the front is sorted by duty cycle ascending with latency strictly
    // descending, so the dominated region decomposes into vertical
    // strips: within [dc_i, dc_{i+1}) the best latency is lat_i
    for (pos, &i) in front.iter().enumerate() {
        let (dc, lat) = points[i];
        let next_dc = front
            .get(pos + 1)
            .map(|&j| points[j].0)
            .unwrap_or(reference.0);
        let width = next_dc.min(reference.0) - dc.min(reference.0);
        let height = (reference.1 - lat).max(0.0);
        hv += width * height;
    }
    hv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_is_strict_somewhere() {
        assert!(dominates((0.1, 1.0), (0.2, 1.0)));
        assert!(dominates((0.1, 1.0), (0.1, 2.0)));
        assert!(dominates((0.1, 1.0), (0.2, 2.0)));
        assert!(!dominates((0.1, 1.0), (0.1, 1.0)), "equal: no domination");
        assert!(!dominates((0.1, 2.0), (0.2, 1.0)), "trade-off");
        assert!(!dominates((0.2, 1.0), (0.1, 2.0)), "trade-off, reversed");
    }

    #[test]
    fn front_extracts_the_staircase() {
        //    dc   lat
        let pts = [
            (0.10, 5.0), // on front
            (0.20, 9.0), // dominated by (0.10, 5.0)
            (0.20, 3.0), // on front
            (0.05, 9.0), // on front (cheapest)
            (0.30, 3.0), // dominated by (0.20, 3.0) (same lat, more dc)
            (0.40, 1.0), // on front
        ];
        let front = front_indices(&pts);
        assert_eq!(front, vec![3, 0, 2, 5]);
        let objs: Vec<Objectives> = front.iter().map(|&i| pts[i]).collect();
        assert!(is_valid_front(&objs));
    }

    #[test]
    fn duplicates_collapse_to_first_by_input_order() {
        let pts = [(0.1, 1.0), (0.1, 1.0), (0.1, 1.0)];
        assert_eq!(front_indices(&pts), vec![0]);
    }

    #[test]
    fn non_finite_points_never_front() {
        let pts = [(0.1, f64::NAN), (f64::INFINITY, 1.0), (0.2, 2.0)];
        assert_eq!(front_indices(&pts), vec![2]);
    }

    #[test]
    fn hypervolume_is_the_staircase_area() {
        let reference = (1.0, 10.0);
        // one point: a single rectangle
        assert!((hypervolume(&[(0.2, 4.0)], reference) - 0.8 * 6.0).abs() < 1e-12);
        // a two-step staircase
        let pts = [(0.2, 4.0), (0.5, 1.0)];
        let expected = (0.5 - 0.2) * (10.0 - 4.0) + (1.0 - 0.5) * (10.0 - 1.0);
        assert!((hypervolume(&pts, reference) - expected).abs() < 1e-12);
        // dominated points add nothing
        let with_dominated = [(0.2, 4.0), (0.5, 1.0), (0.3, 5.0), (0.6, 2.0)];
        assert!((hypervolume(&with_dominated, reference) - expected).abs() < 1e-12);
        // input order is irrelevant
        let shuffled = [(0.5, 1.0), (0.2, 4.0)];
        assert!((hypervolume(&shuffled, reference) - expected).abs() < 1e-12);
    }

    #[test]
    fn hypervolume_clips_at_the_reference() {
        let reference = (1.0, 10.0);
        // a point at/beyond the reference contributes nothing
        assert_eq!(hypervolume(&[(1.0, 1.0)], reference), 0.0);
        assert_eq!(hypervolume(&[(0.5, 10.0)], reference), 0.0);
        assert_eq!(hypervolume(&[], reference), 0.0);
        // a point past the reference duty cycle never shrinks the total
        let inside = [(0.2, 4.0)];
        let with_outside = [(0.2, 4.0), (1.5, 0.5)];
        assert!(hypervolume(&with_outside, reference) >= hypervolume(&inside, reference));
        // adding any non-dominated in-range point grows the volume
        let more = [(0.2, 4.0), (0.6, 2.0)];
        assert!(hypervolume(&more, reference) > hypervolume(&inside, reference));
    }

    #[test]
    fn empty_and_single() {
        assert!(front_indices(&[]).is_empty());
        assert_eq!(front_indices(&[(0.1, 1.0)]), vec![0]);
        assert!(is_valid_front(&[]));
        assert!(is_valid_front(&[(0.1, 1.0)]));
        assert!(!is_valid_front(&[(0.1, 1.0), (0.1, 0.5)]));
        assert!(!is_valid_front(&[(0.1, 1.0), (0.2, 1.0)]));
    }
}
