//! Property tests for the Pareto machinery and the front invariants the
//! issue pins: the reported front is mutually non-dominated, sorted by
//! duty cycle, and every front point's latency respects the theoretical
//! bound at its duty cycle.

use nd_opt::{dominates, front_indices, is_valid_front, run_opt, OptOptions, OptSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `front_indices` on arbitrary point clouds: the result is a valid
    /// front (sorted, mutually non-dominated) and *complete* — every
    /// input point is either on the front or matched/dominated by a
    /// front point.
    #[test]
    fn front_extraction_invariants(
        raw in prop::collection::vec((1u64..1000, 1u64..1000), 0..120),
    ) {
        let points: Vec<(f64, f64)> = raw
            .iter()
            .map(|&(a, b)| (a as f64 / 1000.0, b as f64 / 100.0))
            .collect();
        let front = front_indices(&points);
        let objs: Vec<(f64, f64)> = front.iter().map(|&i| points[i]).collect();
        prop_assert!(is_valid_front(&objs));
        for w in objs.windows(2) {
            prop_assert!(!dominates(w[0], w[1]) && !dominates(w[1], w[0]));
        }
        for (i, &p) in points.iter().enumerate() {
            let covered = front.contains(&i)
                || objs.iter().any(|&f| dominates(f, p) || f == p);
            prop_assert!(covered, "point {i} {p:?} neither on nor under the front");
        }
    }

    /// The optimizer's reported front for the optimal protocol keeps the
    /// pinned invariants for arbitrary search configurations: sorted by
    /// duty cycle, mutually non-dominated, and every point's latency at
    /// or above the closed-form bound at its duty cycle (up to the ~1%
    /// tick-quantization slack of the reception-overlap model), while the
    /// optimal construction stays within 5% overall.
    #[test]
    fn optimal_fronts_respect_the_bound(
        seeds in 2usize..6,
        rounds in 0usize..3,
        lo_mil in 6u64..60,
        span in 2u64..8,
        two_way in 0u64..2,
    ) {
        let eta_lo = lo_mil as f64 / 1000.0;
        let eta_hi = (eta_lo * span as f64 / 2.0).min(0.25);
        prop_assume!(eta_lo < eta_hi);
        let metric = if two_way == 0 { "one-way" } else { "two-way" };
        let mut spec = OptSpec::from_toml_str(&format!(
            "backend = \"exact\"\nmetric = \"{metric}\"\npercentiles = false\n\
             [opt]\nprotocols = [\"optimal\"]\n\
             eta_min = {eta_lo}\neta_max = {eta_hi}\n",
        )).unwrap();
        spec.seeds_per_axis = seeds;
        spec.rounds = rounds;
        let out = run_opt(&spec, &OptOptions::uncached()).unwrap();
        let f = &out.fronts[0];
        prop_assert!(!f.front.is_empty());
        let objs: Vec<(f64, f64)> =
            f.front.iter().map(|p| (p.duty_cycle, p.latency_s)).collect();
        prop_assert!(is_valid_front(&objs), "sorted + non-dominated: {objs:?}");
        for p in &f.front {
            prop_assert!(p.bound_s.is_finite() && p.bound_s > 0.0);
            prop_assert!(
                p.latency_s >= p.bound_s * (1.0 - 0.01),
                "η {}: latency {} below bound {}",
                p.eta, p.latency_s, p.bound_s
            );
            prop_assert!(
                p.gap_frac < 0.05,
                "η {}: optimal construction {} above 5% of bound {}",
                p.eta, p.latency_s, p.bound_s
            );
        }
    }
}
