//! End-to-end tests for nd-opt: the acceptance properties (optimal front
//! within 5% of the closed-form bound; full cache reuse on re-runs) and
//! the CLI binary.

use nd_opt::{run_opt, OptOptions, OptSpec};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nd-opt-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const OPTIMAL_SPEC: &str = "\
name = \"optimal-front\"
backend = \"exact\"
metric = \"two-way\"

[opt]
protocols = [\"optimal\"]
seeds_per_axis = 6
rounds = 2
";

/// The acceptance criterion: the exact-evaluator front of the optimal
/// protocol is non-dominated and every point sits within 5% of the
/// closed-form optimal latency bound at its duty cycle; re-running the
/// same spec is served entirely from the evaluation cache.
#[test]
fn optimal_front_within_5_percent_and_fully_cached_on_rerun() {
    let dir = temp_dir("accept");
    let spec = OptSpec::from_toml_str(OPTIMAL_SPEC).unwrap();
    let opts = OptOptions {
        cache_dir: Some(dir.join("cache")),
        ..OptOptions::default()
    };

    let first = run_opt(&spec, &opts).unwrap();
    assert_eq!(first.fronts.len(), 1);
    let f = &first.fronts[0];
    assert!(!f.front.is_empty(), "non-empty front");
    let objs: Vec<(f64, f64)> = f
        .front
        .iter()
        .map(|p| (p.duty_cycle, p.latency_s))
        .collect();
    assert!(nd_opt::is_valid_front(&objs), "non-dominated, sorted");
    for p in &f.front {
        let bound = nd_core::bounds::symmetric_bound(1.0, 36e-6, p.duty_cycle);
        assert!((p.bound_s - bound).abs() < 1e-12);
        assert!(
            (p.latency_s - bound).abs() / bound < 0.05,
            "η {}: latency {} vs bound {bound}",
            p.eta,
            p.latency_s
        );
    }
    assert_eq!(f.cache_hits, 0, "cold cache");
    assert_eq!(f.executed, f.evaluated);

    // the re-run replays the identical candidate sequence from cache:
    // zero fresh evaluations, identical exports
    let second = run_opt(&spec, &opts).unwrap();
    assert_eq!(second.executed, 0, "0 fresh evaluations on re-run");
    assert_eq!(second.cache_hits, second.fronts[0].evaluated);
    assert_eq!(nd_opt::to_csv(&first), nd_opt::to_csv(&second));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Optimizer evaluations and plain nd-sweep jobs of the same resolved
/// point share one cache: a sweep warmed by the optimizer executes
/// nothing for the overlapping point.
#[test]
fn optimizer_cache_entries_serve_equivalent_sweeps() {
    let dir = temp_dir("shared");
    let cache_dir = dir.join("cache");
    let spec = OptSpec::from_toml_str(
        "backend = \"exact\"\nmetric = \"two-way\"\n\
         [opt]\nprotocols = [\"optimal\"]\nseeds_per_axis = 2\nrounds = 1\n\
         eta_min = 0.05\neta_max = 0.25\n",
    )
    .unwrap();
    let out = run_opt(
        &spec,
        &OptOptions {
            cache_dir: Some(cache_dir.clone()),
            ..OptOptions::default()
        },
    )
    .unwrap();
    assert!(out.executed > 0);

    // the seeding grid's endpoints are exactly eta 0.05 and 0.25
    let sweep = nd_sweep::ScenarioSpec::from_toml_str(
        "backend = \"exact\"\nmetric = \"two-way\"\npercentiles = false\n\
         [grid]\nprotocol = [\"optimal-slotless\"]\neta = [0.05, 0.25]\n",
    )
    .unwrap();
    let swept = nd_sweep::run_sweep(
        &sweep,
        &nd_sweep::SweepOptions {
            cache_dir: Some(cache_dir),
            ..nd_sweep::SweepOptions::default()
        },
    )
    .unwrap();
    assert_eq!(swept.cache_hits, 2, "warmed by the optimizer");
    assert_eq!(swept.executed, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_front_best_gap_and_cache_roundtrip() {
    let dir = temp_dir("cli");
    std::fs::create_dir_all(&dir).unwrap();
    let spec_path = dir.join("opt.toml");
    std::fs::write(&spec_path, OPTIMAL_SPEC).unwrap();
    let cache_dir = dir.join("cache");
    let out_dir = dir.join("out");
    let bin = env!("CARGO_BIN_EXE_nd-opt");

    let run = |cmd: &str, extra: &[&str]| {
        let mut c = std::process::Command::new(bin);
        c.arg(cmd)
            .arg("--spec")
            .arg(&spec_path)
            .arg("--cache-dir")
            .arg(&cache_dir);
        for a in extra {
            c.arg(a);
        }
        let out = c.output().unwrap();
        (
            out.status.success(),
            String::from_utf8_lossy(&out.stdout).to_string(),
            String::from_utf8_lossy(&out.stderr).to_string(),
        )
    };

    let (ok, stdout, stderr) = run("front", &["--out-dir", out_dir.to_str().unwrap()]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("front points"), "{stdout}");
    assert!(out_dir.join("optimal-front.csv").exists());
    assert!(out_dir.join("optimal-front.json").exists());
    let csv1 = std::fs::read_to_string(out_dir.join("optimal-front.csv")).unwrap();
    assert!(csv1.starts_with(
        "# nd-export/v1\nprotocol,eta,slot_us,eta_b,slot_us_b,duty_cycle,duty_cycle_b,latency_s,bound_s,gap_frac"
    ));

    // second run: everything from cache, identical bytes
    let (ok, stdout, _) = run("front", &["--out-dir", out_dir.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("0 executed"), "{stdout}");
    let csv2 = std::fs::read_to_string(out_dir.join("optimal-front.csv")).unwrap();
    assert_eq!(csv1, csv2);

    // best within a 5% duty-cycle budget picks a config that respects it
    let (ok, stdout, stderr) = run("best", &["--budget", "0.05", "--quiet"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("optimal-slotless"), "{stdout}");
    assert!(stdout.contains("latency_s="), "{stdout}");

    // an impossible budget fails loudly
    let (ok, _, stderr) = run("best", &["--budget", "0.001"]);
    assert!(!ok);
    assert!(stderr.contains("budget"), "{stderr}");

    // gap reports the distance-to-optimality summary
    let (ok, stdout, _) = run("gap", &["--quiet"]);
    assert!(ok);
    assert!(stdout.contains("gap to optimal bound"), "{stdout}");

    // search flags override the spec file (not silently ignored): the
    // spec says worst/two-way, the flags swap in a p95 one-way search
    let (ok, stdout, stderr) = run(
        "front",
        &[
            "--objective",
            "p95",
            "--metric",
            "one-way",
            "--out-dir",
            out_dir.to_str().unwrap(),
            "--quiet",
        ],
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("objective p95 → p95_s"), "{stdout}");

    // flags that can't apply to the subcommand are rejected, not ignored
    for cmd in ["front", "gap"] {
        let (ok, _, stderr) = run(cmd, &["--budget", "0.05"]);
        assert!(!ok);
        assert!(stderr.contains("--budget"), "{stderr}");
    }

    // a one-sided eta restriction is honored (upper bound only)
    let (ok, _, stderr) = run(
        "front",
        &[
            "--eta-max",
            "0.05",
            "--out-dir",
            out_dir.to_str().unwrap(),
            "--quiet",
        ],
    );
    assert!(ok, "{stderr}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_version_help_and_bad_args() {
    let bin = env!("CARGO_BIN_EXE_nd-opt");
    let out = std::process::Command::new(bin)
        .arg("--version")
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.starts_with(&format!("nd-opt {}", env!("CARGO_PKG_VERSION"))),
        "{text}"
    );
    assert!(text.contains(nd_sweep::ENGINE_VERSION), "{text}");

    let help = std::process::Command::new(bin)
        .arg("--help")
        .output()
        .unwrap();
    assert!(help.status.success());
    let help = String::from_utf8(help.stdout).unwrap();
    for needle in [
        "front",
        "best",
        "gap",
        "--budget",
        "--objective",
        "--eta-min",
    ] {
        assert!(help.contains(needle), "help must mention `{needle}`");
    }

    for bad in [
        vec!["front"],                          // no spec, no protocol
        vec!["front", "--protocol", "warp"],    // unknown protocol
        vec!["best", "--protocol", "optimal"],  // missing --budget
        vec!["front", "--objective", "median"], // unknown objective
        vec!["frobnicate"],                     // unknown command
    ] {
        let out = std::process::Command::new(bin).args(&bad).output().unwrap();
        assert!(!out.status.success(), "{bad:?} must fail");
    }
}

/// The ad-hoc CLI path (no spec file) matches the acceptance-criterion
/// invocation: `nd-opt front --protocol optimal`.
#[test]
fn cli_adhoc_protocol_front() {
    let dir = temp_dir("adhoc");
    std::fs::create_dir_all(&dir).unwrap();
    let bin = env!("CARGO_BIN_EXE_nd-opt");
    let out = std::process::Command::new(bin)
        .args([
            "front",
            "--protocol",
            "optimal",
            "--seeds",
            "3",
            "--rounds",
            "1",
            "--no-cache",
            "--out-dir",
        ])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("optimal-slotless:"), "{stdout}");
    assert!(stdout.contains("front points"), "{stdout}");
    assert!(dir.join("adhoc.csv").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

const PAIR_SPEC: &str = "\
name = \"asym-front\"
backend = \"exact\"
metric = \"two-way\"

[opt]
protocols = [\"optimal\"]
pair = true
seeds_per_axis = 5
rounds = 2
max_evals = 128
";

/// The asymmetric acceptance criterion: the pair-mode exact front of the
/// optimal protocol sits entirely at-or-above the Theorem 5.7 bound with
/// max gap ≤ 1%, runs over the total budget η_E + η_F, and re-runs fully
/// from cache.
#[test]
fn asymmetric_front_within_1_percent_of_theorem_5_7() {
    let dir = temp_dir("pair-accept");
    let spec = OptSpec::from_toml_str(PAIR_SPEC).unwrap();
    assert!(spec.pair);
    let opts = OptOptions {
        cache_dir: Some(dir.join("cache")),
        ..OptOptions::default()
    };

    let first = run_opt(&spec, &opts).unwrap();
    let f = &first.fronts[0];
    assert!(!f.front.is_empty(), "non-empty asymmetric front");
    let objs: Vec<(f64, f64)> = f
        .front
        .iter()
        .map(|p| (p.duty_cycle, p.latency_s))
        .collect();
    assert!(nd_opt::is_valid_front(&objs));
    for p in &f.front {
        let dc_b = p.duty_cycle_b.expect("pair points carry role B's share");
        let dc_a = p.duty_cycle - dc_b;
        assert!(dc_a > 0.0 && dc_b > 0.0);
        let bound = nd_core::bounds::asymmetric_bound(1.0, 36e-6, dc_a, dc_b);
        assert!((p.bound_s - bound).abs() < 1e-12, "Theorem 5.7 reference");
        assert!(
            p.gap_frac >= -1e-9,
            "no point may beat the bound: gap {}",
            p.gap_frac
        );
        assert!(
            p.gap_frac <= 0.01,
            "(η_E, η_F) = ({dc_a}, {dc_b}): latency {} vs bound {bound} (gap {})",
            p.latency_s,
            p.gap_frac
        );
    }
    // the search actually explored asymmetric splits, not just the diagonal
    assert!(
        f.front
            .iter()
            .any(|p| { (p.eta - p.eta_b.unwrap()).abs() > 1e-9 }),
        "front contains genuinely asymmetric pairs"
    );

    let second = run_opt(&spec, &opts).unwrap();
    assert_eq!(second.executed, 0, "0 fresh evaluations on re-run");
    assert_eq!(nd_opt::to_csv(&first), nd_opt::to_csv(&second));
    let _ = std::fs::remove_dir_all(&dir);
}

/// An empty front exits non-zero *with a censoring diagnostic*: the
/// worst-case objective on a slotted protocol censors every candidate
/// (ω/slot of the offsets are never covered), and the CLI says so per
/// reason instead of printing an empty table.
#[test]
fn cli_empty_front_prints_censoring_diagnostic() {
    let dir = temp_dir("censor");
    std::fs::create_dir_all(&dir).unwrap();
    let bin = env!("CARGO_BIN_EXE_nd-opt");
    let out = std::process::Command::new(bin)
        .args([
            "front",
            "--protocol",
            "code-based",
            "--metric",
            "one-way",
            "--objective",
            "worst",
            "--seeds",
            "2",
            "--rounds",
            "1",
            "--eta-min",
            "0.05",
            "--no-cache",
            "--out-dir",
        ])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(!out.status.success(), "empty front must exit non-zero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("empty front"), "{stderr}");
    assert!(stderr.contains("undiscovered-offsets"), "{stderr}");
    assert!(stderr.contains("censored"), "{stderr}");
    // the diagnostic also teaches the way out
    assert!(stderr.contains("percentile"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--pair` on the CLI: the ad-hoc path runs an asymmetric search and
/// the front CSV carries the role-B columns.
#[test]
fn cli_pair_flag_runs_asymmetric_search() {
    let dir = temp_dir("pair-cli");
    std::fs::create_dir_all(&dir).unwrap();
    let bin = env!("CARGO_BIN_EXE_nd-opt");
    let out = std::process::Command::new(bin)
        .args([
            "front",
            "--protocol",
            "optimal",
            "--pair",
            "--seeds",
            "3",
            "--rounds",
            "1",
            "--no-cache",
            "--out-dir",
        ])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let csv = std::fs::read_to_string(dir.join("adhoc.csv")).unwrap();
    let mut lines = csv.lines();
    assert_eq!(lines.next().unwrap(), "# nd-export/v1");
    assert!(lines.next().unwrap().contains("eta_b"));
    // every data row fills the pair columns
    let row = lines.next().unwrap();
    let cells: Vec<&str> = row.split(',').collect();
    assert!(!cells[3].is_empty(), "eta_b filled: {row}");
    assert!(!cells[6].is_empty(), "duty_cycle_b filled: {row}");

    // --pair with a one-way metric is rejected (Theorem 5.7 is two-way)
    let bad = std::process::Command::new(bin)
        .args([
            "front",
            "--protocol",
            "optimal",
            "--pair",
            "--metric",
            "one-way",
        ])
        .output()
        .unwrap();
    assert!(!bad.status.success());
    assert!(
        String::from_utf8_lossy(&bad.stderr).contains("two-way"),
        "{}",
        String::from_utf8_lossy(&bad.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
