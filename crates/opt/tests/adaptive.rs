//! The adaptive trial-allocation contract, end to end:
//!
//! - on the exact backend, screening is structurally a no-op — adaptive
//!   and plain runs produce bit-identical fronts (property-tested over
//!   the spec knobs);
//! - on the sampling backends, adaptive runs are deterministic across
//!   thread counts and cache states (screening verdicts are pure
//!   functions of content-hashed results);
//! - the acceptance criterion: a netsim-backed 33-node cohort search
//!   produces the identical front at less than a third of the fixed
//!   budget's trial cost.

use nd_opt::{run_opt, FrontResult, OptOptions, OptSpec};
use proptest::prelude::*;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nd-opt-adapt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The front as exact bit patterns — "identical" below means identical
/// IEEE-754 bits, not approximately equal.
fn front_bits(f: &FrontResult) -> Vec<(u64, u64, u64)> {
    f.front
        .iter()
        .map(|p| {
            (
                p.eta.to_bits(),
                p.duty_cycle.to_bits(),
                p.latency_s.to_bits(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Screening needs a trial budget to reduce; the exact backend has
    /// none, so enabling `[opt.adaptive]` must change nothing — same
    /// candidate sequence, same front, zero screening activity —
    /// whatever the surrounding spec knobs say.
    #[test]
    fn adaptive_is_a_structural_noop_on_the_exact_backend(
        seeds in 3usize..6,
        rounds in 1usize..3,
        confidence in 0.05f64..2.0,
    ) {
        let shared = format!(
            "backend = \"exact\"\nmetric = \"two-way\"\n\
             [opt]\nprotocols = [\"optimal\"]\n\
             seeds_per_axis = {seeds}\nrounds = {rounds}\n"
        );
        let plain = OptSpec::from_toml_str(&shared).unwrap();
        let adaptive = OptSpec::from_toml_str(&format!(
            "{shared}[opt.adaptive]\nconfidence = {confidence}\n"
        ))
        .unwrap();
        let a = run_opt(&plain, &OptOptions::uncached()).unwrap();
        let b = run_opt(&adaptive, &OptOptions::uncached()).unwrap();
        let (fa, fb) = (&a.fronts[0], &b.fronts[0]);
        prop_assert_eq!(fb.screened, 0, "no screening stage on exact");
        prop_assert_eq!(fb.promoted, 0);
        prop_assert_eq!(fb.early_stops, 0);
        prop_assert_eq!(fa.evaluated, fb.evaluated);
        prop_assert_eq!(front_bits(fa), front_bits(fb));
    }
}

const MONTECARLO_ADAPTIVE: &str = "\
name = \"mc-adaptive\"
backend = \"montecarlo\"
metric = \"two-way\"

[sim]
trials = 24
seed = 11
horizon_predicted_x = 6.0

[opt]
protocols = [\"optimal\"]
objective = \"p95\"
seeds_per_axis = 4
rounds = 1

[opt.adaptive]
screen_trials = 3
confidence = 0.6
";

/// The determinism contract on a sampling backend: screening verdicts
/// derive only from content-hashed trial results, so the front — and
/// every adaptive counter — is identical at any thread count and any
/// cache state.
#[test]
fn montecarlo_adaptive_runs_are_deterministic_across_threads_and_caches() {
    let spec = OptSpec::from_toml_str(MONTECARLO_ADAPTIVE).unwrap();

    let single = run_opt(
        &spec,
        &OptOptions {
            threads: Some(1),
            ..OptOptions::uncached()
        },
    )
    .unwrap();
    let multi = run_opt(
        &spec,
        &OptOptions {
            threads: Some(4),
            ..OptOptions::uncached()
        },
    )
    .unwrap();
    let (s, m) = (&single.fronts[0], &multi.fronts[0]);
    assert!(s.screened > 0, "adaptive run screens");
    assert_eq!(front_bits(s), front_bits(m), "thread count is invisible");
    assert_eq!(s.screened, m.screened);
    assert_eq!(s.promoted, m.promoted);
    assert_eq!(s.early_stops, m.early_stops);
    assert_eq!(s.censored, m.censored);

    // cache states: a cold cached run executes everything and matches
    // the uncached front; the warm re-run executes nothing and still
    // matches
    let dir = temp_dir("mc-det");
    let cached = OptOptions {
        cache_dir: Some(dir.join("cache")),
        ..OptOptions::default()
    };
    let cold = run_opt(&spec, &cached).unwrap();
    assert_eq!(cold.cache_hits, 0);
    assert_eq!(front_bits(&cold.fronts[0]), front_bits(s));
    let warm = run_opt(&spec, &cached).unwrap();
    assert_eq!(warm.executed, 0, "fully served from cache");
    assert_eq!(front_bits(&warm.fronts[0]), front_bits(s));
    assert_eq!(warm.fronts[0].early_stops, s.early_stops);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A 33-node cohort search of a slotted protocol: searchlight's duty
/// cycle depends only on eta, so the (eta, slot) grid is domination-rich
/// — at every duty cycle exactly one slot length is competitive and the
/// rest trail by ~2.4× steps — which is the shape adaptive screening
/// exploits. The small ω keeps every slot column fully discoverable
/// (ω/slot boundary losses below the p95 tolerance), and the horizon is
/// fixed — slotted schedules have no exact worst case to derive a
/// predicted horizon from.
const NETSIM_33: &str = "\
name = \"netsim-33\"
backend = \"netsim\"
metric = \"two-way\"

[radio]
omega_us = 5

[sim]
trials = 12
seed = 7
half_duplex = false
collisions = false
horizon_ms = 2000

[opt]
protocols = [\"searchlight\"]
objective = \"p95\"
nodes = 33
seeds_per_axis = 5
rounds = 1
max_evals = 25
eta_min = 0.15
eta_max = 0.3
";

const NETSIM_33_ADAPTIVE_KNOBS: &str = "\
[opt.adaptive]
screen_trials = 1
confidence = 0.35
";

/// The acceptance criterion: on a 33-node cohort search, the adaptive
/// run reproduces the fixed-budget front bit for bit while spending
/// under a third of the trials (trial cost is deterministic — wall
/// clock follows it but is not asserted here; `crates/bench` measures
/// it).
#[test]
fn netsim_33_node_adaptive_front_is_identical_at_a_third_of_the_trials() {
    let fixed_spec = OptSpec::from_toml_str(NETSIM_33).unwrap();
    let adaptive_spec =
        OptSpec::from_toml_str(&format!("{NETSIM_33}{NETSIM_33_ADAPTIVE_KNOBS}")).unwrap();
    let trials = fixed_spec.base.sim.trials;
    let screen = adaptive_spec
        .adaptive
        .resolved_screen_trials(trials);

    let fixed = run_opt(&fixed_spec, &OptOptions::uncached()).unwrap();
    let adaptive = run_opt(&adaptive_spec, &OptOptions::uncached()).unwrap();
    let (f, a) = (&fixed.fronts[0], &adaptive.fronts[0]);

    assert!(!f.front.is_empty());
    assert_eq!(front_bits(f), front_bits(a), "identical front, bit for bit");

    // the deterministic trial cost: every candidate of the fixed run
    // pays the full budget; adaptive candidates pay the screen, and only
    // the promoted ones pay the full budget on top
    assert_eq!(f.evaluated, a.evaluated, "same candidate sequence");
    assert!(a.screened > 0);
    assert!(a.early_stops > 0, "screening must settle some candidates");
    let fixed_cost = f.evaluated * trials;
    let adaptive_cost = a.screened * screen + a.promoted * trials;
    assert!(
        fixed_cost >= 3 * adaptive_cost,
        "trial cost {fixed_cost} vs {adaptive_cost} (screened {}, promoted {}, stopped {})",
        a.screened,
        a.promoted,
        a.early_stops,
    );
}
