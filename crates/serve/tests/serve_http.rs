//! End-to-end HTTP tests: a real `nd-serve` server on a loopback socket,
//! driven by a real TCP client. Covers the cold → warm read path, the
//! full error taxonomy over the wire, and the warm-cache latency
//! acceptance bound.
//!
//! Metric-asserting tests live in `serve_coalesce.rs` — the metrics
//! registry is process-global, so they need their own test binary.

use nd_opt::OptOptions;
use nd_serve::{http, App, Planner};
use nd_sweep::value::{parse_json, Value};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Instant;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nd-serve-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small, fast search — the spec payload used throughout.
fn quick_spec() -> &'static str {
    r#"{"name": "q", "backend": "exact", "metric": "two-way",
        "opt": {"protocols": ["optimal"], "seeds_per_axis": 3, "rounds": 1}}"#
}

fn envelope(spec: &str, extra: &str) -> String {
    format!(r#"{{"api": "nd-serve-api/v1", "spec": {spec}{extra}}}"#)
}

struct TestServer {
    addr: SocketAddr,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl TestServer {
    fn start(opts: OptOptions) -> TestServer {
        let planner = Arc::new(Planner::new(opts, 1024));
        let server = http::Server::bind("127.0.0.1:0").unwrap();
        let addr = server.addr();
        let shutdown = Arc::new(AtomicBool::new(false));
        let app = App::new(planner, Arc::clone(&shutdown), addr);
        let handle = std::thread::spawn(move || {
            server.run(8, shutdown, Arc::new(move |r: &http::Request| app.route(r)))
        });
        TestServer {
            addr,
            handle: Some(handle),
        }
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        let (status, _) = Client::connect(self.addr).send("POST", "/v1/shutdown", "");
        assert_eq!(status, 200);
        self.handle.take().unwrap().join().unwrap();
    }
}

/// A bare-hands HTTP/1.1 client over one keep-alive connection.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        let writer = stream.try_clone().unwrap();
        Client {
            writer,
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, method: &str, path: &str, body: &str) -> (u16, String) {
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        self.writer.flush().unwrap();
        let mut status_line = String::new();
        self.reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            self.reader.read_line(&mut header).unwrap();
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().unwrap();
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).unwrap();
        (status, String::from_utf8(body).unwrap())
    }
}

fn get(body: &str, path: &[&str]) -> Value {
    let mut v = parse_json(body).unwrap();
    for key in path {
        v = v.as_table().unwrap().get(*key).cloned().unwrap();
    }
    v
}

fn error_code(body: &str) -> String {
    get(body, &["error", "code"]).as_str().unwrap().to_string()
}

/// The read/write path: a cold query computes (cache misses evaluate on
/// the pool), an identical warm query is answered from the memo with
/// zero fresh evaluations, and warm answers stay fast enough for the
/// loopback p99 bound even under concurrent load.
#[test]
fn cold_query_computes_then_warm_queries_serve_with_zero_evaluations() {
    let dir = temp_dir("warm");
    let server = TestServer::start(OptOptions {
        cache_dir: Some(dir.join("cache")),
        ..OptOptions::default()
    });
    let mut client = Client::connect(server.addr);

    let (status, body) = client.send("POST", "/v1/front", &envelope(quick_spec(), ""));
    assert_eq!(status, 200, "{body}");
    assert_eq!(get(&body, &["api"]).as_str(), Some("nd-serve-api/v1"));
    assert_eq!(
        get(&body, &["result", "schema"]).as_str(),
        Some("nd-export/v1")
    );
    assert_eq!(get(&body, &["served", "memo"]).as_bool(), Some(false));
    assert!(get(&body, &["served", "executed"]).as_i64().unwrap() > 0);
    let cold_front = get(&body, &["result", "fronts"]);

    // identical warm query: memo hit, no fresh evaluations, same answer
    let (status, body) = client.send("POST", "/v1/front", &envelope(quick_spec(), ""));
    assert_eq!(status, 200, "{body}");
    assert_eq!(get(&body, &["served", "memo"]).as_bool(), Some(true));
    assert_eq!(get(&body, &["served", "executed"]).as_i64(), Some(0));
    assert_eq!(get(&body, &["result", "fronts"]), cold_front);

    // warm latency under concurrent load: 4 keep-alive connections × 50
    // requests; p99 must stay under the loopback bound (the acceptance
    // number is 1 ms, measured on optimized builds — debug gets headroom)
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let addr = server.addr;
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                (0..50)
                    .map(|_| {
                        let start = Instant::now();
                        let (status, _) =
                            client.send("POST", "/v1/front", &envelope(quick_spec(), ""));
                        assert_eq!(status, 200);
                        start.elapsed()
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let mut latencies: Vec<_> = threads
        .into_iter()
        .flat_map(|t| t.join().unwrap())
        .collect();
    latencies.sort();
    let p99 = latencies[latencies.len() * 99 / 100 - 1];
    let bound_us = if cfg!(debug_assertions) {
        10_000
    } else {
        1_000
    };
    assert!(
        p99.as_micros() < bound_us,
        "warm p99 {p99:.2?} over {} requests (bound {bound_us} µs)",
        latencies.len()
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// `/v1/best` picks the most capable affordable point per protocol; an
/// unaffordable budget is a 422 `infeasible`.
#[test]
fn best_respects_the_budget_and_reports_infeasible() {
    let server = TestServer::start(OptOptions::uncached());
    let mut client = Client::connect(server.addr);

    let (status, body) = client.send(
        "POST",
        "/v1/best",
        &envelope(quick_spec(), r#", "budget": 0.05"#),
    );
    assert_eq!(status, 200, "{body}");
    let choices = get(&body, &["result", "choices"]);
    let choice = choices.as_array().unwrap()[0].as_table().unwrap();
    assert_eq!(choice["protocol"].as_str(), Some("optimal-slotless"));
    let dc = choice["point"].as_table().unwrap()["duty_cycle"]
        .as_f64()
        .unwrap();
    assert!(dc <= 0.05, "affordable: {dc}");

    // a budget nothing can meet: well-formed, unsatisfiable
    let (status, body) = client.send(
        "POST",
        "/v1/best",
        &envelope(quick_spec(), r#", "budget": 1e-7"#),
    );
    assert_eq!(status, 422, "{body}");
    assert_eq!(error_code(&body), "infeasible");
}

/// `/v1/gap` summarizes distance-to-bound per protocol.
#[test]
fn gap_summarizes_distance_to_bound() {
    let server = TestServer::start(OptOptions::uncached());
    let mut client = Client::connect(server.addr);
    let (status, body) = client.send("POST", "/v1/gap", &envelope(quick_spec(), ""));
    assert_eq!(status, 200, "{body}");
    let front = get(&body, &["result", "fronts"]).as_array().unwrap()[0].clone();
    let t = front.as_table().unwrap();
    assert_eq!(t["protocol"].as_str(), Some("optimal-slotless"));
    assert!(t["points"].as_i64().unwrap() > 0);
    // the optimal construction tracks the bound closely
    assert!(t["gap_max"].as_f64().unwrap() < 0.05);
    assert!(t["gap_min"].as_f64().unwrap() <= t["gap_max"].as_f64().unwrap());
}

/// The wire error taxonomy: every failure class maps to its documented
/// status + stable code.
#[test]
fn error_taxonomy_over_the_wire() {
    let server = TestServer::start(OptOptions::uncached());
    let mut client = Client::connect(server.addr);

    let (status, body) = client.send("POST", "/v1/nope", "{}");
    assert_eq!((status, error_code(&body)), (404, "not-found".into()));

    let (status, body) = client.send("GET", "/v1/front", "");
    assert_eq!(
        (status, error_code(&body)),
        (405, "method-not-allowed".into())
    );

    let (status, body) = client.send("POST", "/v1/front", "{ not json");
    assert_eq!((status, error_code(&body)), (400, "bad-request".into()));

    // valid JSON, missing the api version tag
    let (status, body) = client.send("POST", "/v1/front", r#"{"spec": {}}"#);
    assert_eq!((status, error_code(&body)), (400, "bad-request".into()));
    assert!(body.contains("nd-serve-api/v1"), "{body}");

    // well-formed envelope, spec fails the nd-opt grammar
    let (status, body) = client.send(
        "POST",
        "/v1/front",
        &envelope(r#"{"backend": "exact", "opt": {}}"#, ""),
    );
    assert_eq!((status, error_code(&body)), (400, "bad-spec".into()));

    // a search where every candidate is censored: 422 with the
    // per-reason counts (the CLI's empty-front diagnostic, typed)
    let censored_spec = r#"{"name": "c", "backend": "exact", "metric": "one-way",
        "opt": {"protocols": ["code-based"], "objective": "worst",
                "seeds_per_axis": 2, "rounds": 1, "eta_min": 0.05}}"#;
    let (status, body) = client.send("POST", "/v1/front", &envelope(censored_spec, ""));
    assert_eq!(status, 422, "{body}");
    assert_eq!(error_code(&body), "empty-front");
    assert!(
        get(&body, &["error", "censored"]).as_table().unwrap()["undiscovered-offsets"]
            .as_i64()
            .unwrap()
            > 0,
        "{body}"
    );
}

/// A corrupt cache entry is a 500 `corrupt-cache`: the server reports
/// damaged state instead of silently recomputing over it.
#[test]
fn corrupt_cache_is_a_500_not_a_recompute() {
    let dir = temp_dir("corrupt");
    let cache_dir = dir.join("cache");
    let opts = OptOptions {
        cache_dir: Some(cache_dir.clone()),
        ..OptOptions::default()
    };

    // populate the cache, then stop (the memo dies with the server)
    {
        let server = TestServer::start(opts.clone());
        let (status, _) =
            Client::connect(server.addr).send("POST", "/v1/front", &envelope(quick_spec(), ""));
        assert_eq!(status, 200);
    }

    // vandalize every entry
    let mut corrupted = 0;
    for shard in std::fs::read_dir(&cache_dir).unwrap() {
        for entry in std::fs::read_dir(shard.unwrap().path()).unwrap() {
            std::fs::write(entry.unwrap().path(), "{ truncated garbage").unwrap();
            corrupted += 1;
        }
    }
    assert!(
        corrupted > 0,
        "the cold query should have populated the cache"
    );

    let server = TestServer::start(opts);
    let (status, body) =
        Client::connect(server.addr).send("POST", "/v1/front", &envelope(quick_spec(), ""));
    assert_eq!(status, 500, "{body}");
    assert_eq!(error_code(&body), "corrupt-cache");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Liveness and metrics control endpoints.
#[test]
fn healthz_and_metrics_respond() {
    let server = TestServer::start(OptOptions::uncached());
    let mut client = Client::connect(server.addr);
    let (status, body) = client.send("GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(get(&body, &["status"]).as_str(), Some("ok"));
    // registry may be off (default): the endpoint still answers
    let (status, body) = client.send("GET", "/v1/metrics", "");
    assert_eq!(status, 200);
    parse_json(&body).unwrap();
}
