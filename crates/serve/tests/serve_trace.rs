//! End-to-end request telemetry: the `X-ND-Trace-Id` contract over the
//! wire, trace-context propagation into evaluation worker threads, and
//! the per-id span trees `nd-trace` rebuilds from the span sink.
//!
//! One `#[test]` in its own binary: the trace sink (like the metrics
//! registry) is process-global, so nothing else may run concurrently.

use nd_opt::OptOptions;
use nd_serve::{http, App, Planner};
use nd_sweep::value::{parse_json, Value};
use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Barrier};

const FANOUT: usize = 32;
const HERD: usize = 8;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nd-serve-trace-{tag}-{}", std::process::id()))
}

/// The memo key is the spec's *content* hash (the name is excluded), so
/// distinct fan-out requests vary `eta_min` — a hashed search knob —
/// to each get their own computation.
fn spec(name: &str, eta_min: f64) -> String {
    format!(
        r#"{{"name": "{name}", "backend": "exact", "metric": "two-way",
            "opt": {{"protocols": ["optimal"], "seeds_per_axis": 3, "rounds": 1,
                     "eta_min": {eta_min}}}}}"#
    )
}

fn envelope(spec: &str) -> String {
    format!(r#"{{"api": "nd-serve-api/v1", "spec": {spec}}}"#)
}

/// One request over its own connection; returns status, the echoed
/// `X-ND-Trace-Id` header, and the body.
fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    trace_id: Option<&str>,
) -> (u16, Option<String>, String) {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let id_header = trace_id.map_or(String::new(), |id| format!("X-ND-Trace-Id: {id}\r\n"));
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: test\r\n{id_header}Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    writer.flush().unwrap();
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    let mut content_length = 0usize;
    let mut echoed = None;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).unwrap();
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap();
            } else if name.eq_ignore_ascii_case("x-nd-trace-id") {
                echoed = Some(value.trim().to_string());
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    (status, echoed, String::from_utf8(body).unwrap())
}

fn served_flag(body: &str, flag: &str) -> bool {
    let v = parse_json(body).unwrap();
    let served = v.as_table().unwrap().get("served").unwrap();
    matches!(
        served.as_table().unwrap().get(flag),
        Some(Value::Bool(true))
    )
}

#[test]
fn trace_ids_flow_end_to_end_under_concurrency() {
    let trace_path = temp_path("sink");
    let _ = std::fs::remove_file(&trace_path);
    nd_obs::trace::init_file(&trace_path).unwrap();
    nd_obs::metrics::set_enabled(true);

    let opts = OptOptions {
        threads: Some(2),
        ..OptOptions::uncached()
    };
    let planner = Arc::new(Planner::new(opts, 1024));
    let server = http::Server::bind("127.0.0.1:0").unwrap();
    let addr = server.addr();
    let shutdown = Arc::new(AtomicBool::new(false));
    let app = App::new(planner, Arc::clone(&shutdown), addr);
    let handle = std::thread::spawn(move || {
        server.run(
            48,
            shutdown,
            Arc::new(move |r: &http::Request| app.route(r)),
        )
    });

    // --- fan-out: 32 concurrent requests, distinct specs, distinct ids
    let fan_ids: Vec<String> = (0..FANOUT).map(|i| format!("fan{i:012x}")).collect();
    let barrier = Arc::new(Barrier::new(FANOUT));
    let threads: Vec<_> = fan_ids
        .iter()
        .enumerate()
        .map(|(i, id)| {
            let id = id.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let body = envelope(&spec(&id, 0.01 + 0.002 * i as f64));
                barrier.wait();
                request(addr, "POST", "/v1/front", &body, Some(&id))
            })
        })
        .collect();
    for (id, t) in fan_ids.iter().zip(threads) {
        let (status, echoed, _body) = t.join().unwrap();
        assert_eq!(status, 200);
        assert_eq!(echoed.as_deref(), Some(id.as_str()), "server echoes the id");
    }

    // --- herd: identical spec, one leader computes, followers coalesce
    let herd_ids: Vec<String> = (0..HERD).map(|i| format!("herd{i:012x}")).collect();
    let barrier = Arc::new(Barrier::new(HERD));
    let herd_body = envelope(&spec("herd", 0.011));
    let threads: Vec<_> = herd_ids
        .iter()
        .map(|id| {
            let id = id.clone();
            let body = herd_body.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                request(addr, "POST", "/v1/front", &body, Some(&id))
            })
        })
        .collect();
    let mut leader_ids = Vec::new();
    let mut coalesced = 0;
    for (id, t) in herd_ids.iter().zip(threads) {
        let (status, echoed, body) = t.join().unwrap();
        assert_eq!(status, 200);
        assert_eq!(echoed.as_deref(), Some(id.as_str()));
        let is_memo = served_flag(&body, "memo");
        let is_coalesced = served_flag(&body, "coalesced");
        if is_coalesced {
            coalesced += 1;
        }
        if !is_memo && !is_coalesced {
            leader_ids.push(id.clone());
        }
    }
    assert_eq!(leader_ids.len(), 1, "exactly one herd leader computed");
    assert!(coalesced >= 1, "at least one follower coalesced");

    // --- no client id: the server generates one
    let (status, echoed, _body) = request(addr, "GET", "/healthz", "", None);
    assert_eq!(status, 200);
    let generated = echoed.expect("generated id echoed");
    assert_eq!(generated.len(), 16);
    assert!(generated.chars().all(|c| c.is_ascii_hexdigit()));

    // --- enriched /healthz + prometheus exposition over the wire
    let (_, _, health) = request(addr, "GET", "/healthz", "", None);
    let health = parse_json(&health).unwrap();
    let health = health.as_table().unwrap();
    for key in [
        "version",
        "engine",
        "uptime_s",
        "stage_cycles",
        "spool_depth",
    ] {
        assert!(health.contains_key(key), "healthz missing `{key}`");
    }
    let (status, _, prom) = request(addr, "GET", "/v1/metrics?format=prometheus", "", None);
    assert_eq!(status, 200);
    assert!(prom.contains("# TYPE serve_requests counter"), "{prom}");
    assert!(prom.contains("# TYPE serve_request_us summary"), "{prom}");
    assert!(
        prom.contains("serve_request_us{quantile=\"0.99\"}"),
        "{prom}"
    );

    let (status, _, _) = request(addr, "POST", "/v1/shutdown", "", None);
    assert_eq!(status, 200);
    handle.join().unwrap();
    nd_obs::trace::shutdown();

    // --- the trace: every request's spans carry its id
    let text = std::fs::read_to_string(&trace_path).unwrap();
    let spans = nd_trace::parse_trace(&text).unwrap();
    let request_ctx: BTreeSet<&str> = spans
        .iter()
        .filter(|s| s.name == "serve.request")
        .map(|s| s.ctx.as_deref().expect("every request span has a ctx"))
        .collect();
    for id in fan_ids.iter().chain(&herd_ids) {
        assert!(
            request_ctx.contains(id.as_str()),
            "missing request for {id}"
        );
    }
    assert!(request_ctx.contains(generated.as_str()));

    // Each fan-out id owns a complete tree: exactly one serve.request
    // root, with the search and its pool-worker evaluations stamped.
    for id in &fan_ids {
        let subset = nd_trace::filter_ctx(spans.clone(), id);
        let names: BTreeSet<&str> = subset.iter().map(|s| s.name.as_str()).collect();
        for name in ["serve.request", "opt.run", "opt.eval"] {
            assert!(names.contains(name), "ctx {id} lost `{name}` spans");
        }
        let n_spans = subset.len();
        let forest = nd_trace::build_forest(subset);
        assert_eq!(forest.nodes.len(), n_spans);
        let request_roots = forest
            .roots
            .iter()
            .filter(|&&r| forest.nodes[r].span.name == "serve.request")
            .count();
        assert_eq!(request_roots, 1, "ctx {id}: one top-level request span");
    }

    // Herd: only the leader's id reaches the search spans; followers
    // still log their own serve.request under their own id (asserted
    // above via request_ctx).
    let herd_set: BTreeSet<&str> = herd_ids.iter().map(String::as_str).collect();
    let computing: BTreeSet<&str> = spans
        .iter()
        .filter(|s| s.name == "opt.run" || s.name == "opt.eval")
        .filter_map(|s| s.ctx.as_deref())
        .filter(|c| herd_set.contains(c))
        .collect();
    assert_eq!(
        computing,
        BTreeSet::from([leader_ids[0].as_str()]),
        "only the leader evaluates"
    );

    // Cross-thread propagation: the leader's evaluation spans run on
    // pool worker threads, not the request handler's thread.
    let leader_spans = nd_trace::filter_ctx(spans.clone(), &leader_ids[0]);
    let request_tid = leader_spans
        .iter()
        .find(|s| s.name == "serve.request")
        .unwrap()
        .tid;
    assert!(
        leader_spans
            .iter()
            .any(|s| s.name == "opt.eval" && s.tid != request_tid),
        "no evaluation span crossed onto a worker thread"
    );

    let _ = std::fs::remove_file(&trace_path);
}
