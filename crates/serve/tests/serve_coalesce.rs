//! Request coalescing, asserted through the metrics registry: a
//! thundering herd of identical cache-miss requests costs exactly one
//! evaluation.
//!
//! This lives in its own test binary (one `#[test]`) because the
//! registry is process-global — any concurrently-running test would
//! pollute the counters.

use nd_opt::{OptOptions, OptSpec};
use nd_serve::Planner;
use std::sync::{Arc, Barrier};

const HERD: usize = 32;

#[test]
fn herd_of_identical_requests_coalesces_to_one_evaluation() {
    nd_obs::metrics::set_enabled(true);
    // the search must outlast a scheduler timeslice on a loaded single-CPU
    // host, or followers arrive after completion and read the memo instead
    let spec = Arc::new(
        OptSpec::from_json_str(
            r#"{"name": "herd", "backend": "exact", "metric": "two-way",
                "opt": {"protocols": ["optimal"], "seeds_per_axis": 15, "rounds": 3}}"#,
        )
        .unwrap(),
    );
    let planner = Arc::new(Planner::new(OptOptions::uncached(), 1024));

    // all threads release together; the leader's search takes orders of
    // magnitude longer than the followers' barrier→memo-lock hop, so the
    // followers deterministically find the Pending slot and wait
    let barrier = Arc::new(Barrier::new(HERD));
    let threads: Vec<_> = (0..HERD)
        .map(|_| {
            let planner = Arc::clone(&planner);
            let spec = Arc::clone(&spec);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                planner.front_document(&spec)
            })
        })
        .collect();
    let results: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();

    let mut fresh = 0;
    let mut coalesced = 0;
    for (computed, served) in &results {
        let computed = computed.as_ref().expect("every request succeeds");
        assert!(!computed
            .doc
            .as_table()
            .unwrap()
            .get("fronts")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());
        match (served.memo, served.coalesced) {
            (false, false) => fresh += 1,
            (false, true) => coalesced += 1,
            (true, false) => {} // straggler that arrived after completion
            (true, true) => panic!("memo and coalesced are exclusive"),
        }
    }
    assert_eq!(fresh, 1, "exactly one leader computed");
    assert_eq!(coalesced, HERD - 1, "everyone else coalesced onto it");

    let snapshot = nd_obs::metrics::snapshot().to_json();
    assert!(
        snapshot.contains("\"serve.computed\": 1"),
        "one computation: {snapshot}"
    );
    assert!(
        snapshot.contains(&format!("\"serve.coalesced\": {}", HERD - 1)),
        "herd minus leader coalesced: {snapshot}"
    );

    // one more identical request: a plain memo hit, still zero work
    let (_, served) = planner.front_document(&spec);
    assert!(served.memo && !served.coalesced);
    let snapshot = nd_obs::metrics::snapshot().to_json();
    assert!(snapshot.contains("\"serve.computed\": 1"), "{snapshot}");
    assert!(snapshot.contains("\"serve.memo_hits\": 1"), "{snapshot}");
}
