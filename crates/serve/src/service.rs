//! The planning service: an in-memory response memo over the
//! content-addressed result cache, request coalescing, and the HTTP
//! router.
//!
//! Three layers answer a query, fastest first:
//!
//! 1. **Memo** — completed front documents, keyed by the request spec's
//!    content hash. Warm queries never touch disk; this is what makes
//!    sub-millisecond loopback p99 possible.
//! 2. **Result cache** — `nd-sweep`'s on-disk [`nd_sweep::ResultCache`],
//!    shared with every CLI sweep and search. A memo miss re-runs the
//!    search, but each candidate evaluation is served from here when
//!    present ("re-evaluate on miss"); corrupt entries abort with a 500
//!    ([`nd_opt::OptOptions::strict_cache`]) rather than being silently
//!    recomputed.
//! 3. **Worker pool** — actual cache-miss evaluations run on the same
//!    `pool::run_parallel` machinery the CLIs use.
//!
//! Identical concurrent requests *coalesce*: the first becomes the
//! leader and computes, the rest block on the leader's slot and reuse its
//! result — a thundering herd of N identical cache-miss requests costs
//! exactly one evaluation (`serve.computed` stays 1, `serve.coalesced`
//! counts the N−1 followers).

use crate::api::{parse_request, ApiError, Endpoint, Request, API_VERSION};
use crate::http;
use nd_opt::{run_opt, OptOptions, OptSpec};
use nd_sweep::value::{parse_json, Value};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// A completed computation: the parsed `nd-export/v1` front document
/// plus what producing it cost.
pub struct Computed {
    /// The front document (`nd_opt::to_json` output, parsed).
    pub doc: Value,
    /// Fresh backend evaluations the search executed.
    pub executed: usize,
    /// Evaluations served from the on-disk result cache.
    pub cache_hits: usize,
    /// Wall-clock of the search, microseconds.
    pub wall_us: u64,
}

/// How a particular request got its answer (the response `served` block).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Served {
    /// Answered from the in-memory memo — no search, no disk.
    pub memo: bool,
    /// Coalesced onto another request's in-flight computation.
    pub coalesced: bool,
}

enum SlotState {
    Pending,
    Ready(Result<Arc<Computed>, ApiError>),
}

/// One memo entry: leader computes, followers wait on the condvar.
struct Slot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

struct Memo {
    entries: HashMap<String, Arc<Slot>>,
    /// Insertion order, for capacity eviction (oldest first).
    order: VecDeque<String>,
}

/// The query engine behind all three endpoints.
pub struct Planner {
    opts: OptOptions,
    memo: Mutex<Memo>,
    capacity: usize,
}

impl Planner {
    /// Build a planner. `opts` should have
    /// [`strict_cache`](OptOptions::strict_cache) set (the constructor
    /// forces it: a server must surface corrupt state, not rewrite it).
    /// `capacity` bounds the memo entry count; oldest entries fall out
    /// first — their per-evaluation results stay in the on-disk cache, so
    /// recomputation after eviction is cheap.
    pub fn new(mut opts: OptOptions, capacity: usize) -> Planner {
        opts.strict_cache = true;
        Planner {
            opts,
            memo: Mutex::new(Memo {
                entries: HashMap::new(),
                order: VecDeque::new(),
            }),
            capacity: capacity.max(1),
        }
    }

    /// Answer a parsed request, returning the response body.
    pub fn handle(&self, req: &Request) -> Result<String, ApiError> {
        let (computed, served) = self.front_document(&req.spec);
        let computed = computed?;
        if let Some(err) = empty_front_error(&computed.doc) {
            return Err(err);
        }
        let result = match req.endpoint {
            Endpoint::Front => computed.doc.clone(),
            Endpoint::Best => best_result(&computed.doc, req.budget.expect("parse enforces"))?,
            Endpoint::Gap => gap_result(&computed.doc),
        };
        Ok(crate::api::success_body(
            result,
            served_block(&computed, served),
        ))
    }

    /// The memoized/coalesced front computation for one spec.
    pub fn front_document(&self, spec: &OptSpec) -> (Result<Arc<Computed>, ApiError>, Served) {
        let hash = spec.content_hash();
        let (slot, leader) = {
            let mut memo = self.memo.lock().unwrap();
            match memo.entries.get(&hash) {
                Some(slot) => (Arc::clone(slot), false),
                None => {
                    let slot = Arc::new(Slot {
                        state: Mutex::new(SlotState::Pending),
                        ready: Condvar::new(),
                    });
                    memo.order.push_back(hash.clone());
                    memo.entries.insert(hash.clone(), Arc::clone(&slot));
                    while memo.entries.len() > self.capacity {
                        if let Some(old) = memo.order.pop_front() {
                            memo.entries.remove(&old);
                        }
                    }
                    (slot, true)
                }
            }
        };

        if leader {
            nd_obs::metrics::inc("serve.computed");
            let result = self.compute(spec);
            *slot.state.lock().unwrap() = SlotState::Ready(result.clone());
            slot.ready.notify_all();
            if result.is_err() {
                // failures are answered to everyone already waiting but
                // not memoized: a later retry may find the cache healed
                let mut memo = self.memo.lock().unwrap();
                memo.entries.remove(&hash);
                memo.order.retain(|h| h != &hash);
            }
            (
                result,
                Served {
                    memo: false,
                    coalesced: false,
                },
            )
        } else {
            let mut state = slot.state.lock().unwrap();
            let mut waited = false;
            while matches!(*state, SlotState::Pending) {
                waited = true;
                state = slot.ready.wait(state).unwrap();
            }
            let SlotState::Ready(result) = &*state else {
                unreachable!("the wait loop only exits on Ready")
            };
            nd_obs::metrics::inc(if waited {
                "serve.coalesced"
            } else {
                "serve.memo_hits"
            });
            (
                result.clone(),
                Served {
                    memo: !waited,
                    coalesced: waited,
                },
            )
        }
    }

    fn compute(&self, spec: &OptSpec) -> Result<Arc<Computed>, ApiError> {
        let start = Instant::now();
        let outcome = run_opt(spec, &self.opts).map_err(|e| ApiError::from_opt_error(&e.0))?;
        let doc = parse_json(&nd_opt::to_json(&outcome))
            .map_err(|e| ApiError::Internal(format!("exporter emitted invalid JSON: {e}")))?;
        Ok(Arc::new(Computed {
            doc,
            executed: outcome.executed,
            cache_hits: outcome.cache_hits,
            wall_us: start.elapsed().as_micros() as u64,
        }))
    }
}

/// Build the response `served` block. Cost fields describe work done on
/// behalf of *this* request: memo hits and coalesced followers report
/// zero executions (the leader's response carries the real cost).
fn served_block(computed: &Computed, served: Served) -> Value {
    let fresh = !served.memo && !served.coalesced;
    Value::Table(BTreeMap::from([
        ("memo".to_string(), Value::Bool(served.memo)),
        ("coalesced".to_string(), Value::Bool(served.coalesced)),
        (
            "executed".to_string(),
            Value::Int(if fresh { computed.executed as i64 } else { 0 }),
        ),
        (
            "cache_hits".to_string(),
            Value::Int(if fresh { computed.cache_hits as i64 } else { 0 }),
        ),
        (
            "wall_us".to_string(),
            Value::Int(if fresh { computed.wall_us as i64 } else { 0 }),
        ),
    ]))
}

fn fronts_of(doc: &Value) -> &[Value] {
    doc.as_table()
        .and_then(|t| t.get("fronts"))
        .and_then(Value::as_array)
        .unwrap_or(&[])
}

/// The `empty-front` check, mirroring the `nd-opt` CLI diagnostic: when
/// any protocol's front is empty, aggregate its per-reason censoring
/// counts into the error payload so the client learns why.
fn empty_front_error(doc: &Value) -> Option<ApiError> {
    let mut empty: Vec<String> = Vec::new();
    let mut censored: BTreeMap<String, i64> = BTreeMap::new();
    for front in fronts_of(doc) {
        let t = front.as_table()?;
        if t.get("front")?.as_array()?.is_empty() {
            empty.push(t.get("protocol")?.as_str()?.to_string());
            if let Some(reasons) = t.get("censored").and_then(Value::as_table) {
                for (reason, count) in reasons {
                    *censored.entry(reason.clone()).or_insert(0) += count.as_i64().unwrap_or(0);
                }
            }
        }
    }
    if empty.is_empty() {
        return None;
    }
    Some(ApiError::EmptyFront {
        message: format!(
            "empty front for {} (every candidate censored — see `censored` for reasons)",
            empty.join(", ")
        ),
        censored,
    })
}

/// `/v1/best`: per protocol, the most capable front point within the
/// duty-cycle budget (fronts are sorted by duty cycle, latency
/// decreasing, so that is the *last* affordable point).
fn best_result(doc: &Value, budget: f64) -> Result<Value, ApiError> {
    let mut choices: Vec<Value> = Vec::new();
    let mut found = false;
    for front in fronts_of(doc) {
        let Some(t) = front.as_table() else { continue };
        let protocol = t.get("protocol").and_then(Value::as_str).unwrap_or("");
        let points = t.get("front").and_then(Value::as_array).unwrap_or(&[]);
        let best = points.iter().rev().find(|p| {
            p.as_table()
                .and_then(|pt| pt.get("duty_cycle"))
                .and_then(Value::as_f64)
                .is_some_and(|dc| dc <= budget)
        });
        let mut entry =
            BTreeMap::from([("protocol".to_string(), Value::Str(protocol.to_string()))]);
        match best {
            Some(point) => {
                found = true;
                entry.insert("point".to_string(), point.clone());
            }
            None => {
                entry.insert("point".to_string(), Value::Null);
            }
        }
        choices.push(Value::Table(entry));
    }
    if !found {
        return Err(ApiError::Infeasible(format!(
            "no configuration fits duty-cycle budget {budget}"
        )));
    }
    Ok(Value::Table(BTreeMap::from([
        ("budget".to_string(), Value::Float(budget)),
        ("choices".to_string(), Value::Array(choices)),
    ])))
}

/// `/v1/gap`: per-protocol gap-to-bound summary over the front points.
fn gap_result(doc: &Value) -> Value {
    let fronts: Vec<Value> = fronts_of(doc)
        .iter()
        .filter_map(|front| {
            let t = front.as_table()?;
            let protocol = t.get("protocol")?.as_str()?.to_string();
            let gaps: Vec<f64> = t
                .get("front")?
                .as_array()?
                .iter()
                .filter_map(|p| p.as_table()?.get("gap_frac")?.as_f64())
                .filter(|g| g.is_finite())
                .collect();
            let stat = |v: f64| {
                if gaps.is_empty() {
                    Value::Null
                } else {
                    Value::Float(v)
                }
            };
            let mut entry = BTreeMap::new();
            entry.insert("protocol".to_string(), Value::Str(protocol));
            entry.insert(
                "points".to_string(),
                Value::Int(
                    t.get("front")
                        .and_then(Value::as_array)
                        .unwrap_or(&[])
                        .len() as i64,
                ),
            );
            entry.insert(
                "gap_min".to_string(),
                stat(gaps.iter().copied().fold(f64::INFINITY, f64::min)),
            );
            entry.insert(
                "gap_mean".to_string(),
                stat(gaps.iter().sum::<f64>() / gaps.len().max(1) as f64),
            );
            entry.insert(
                "gap_max".to_string(),
                stat(gaps.iter().copied().fold(f64::NEG_INFINITY, f64::max)),
            );
            Some(Value::Table(entry))
        })
        .collect();
    Value::Table(BTreeMap::from([(
        "fronts".to_string(),
        Value::Array(fronts),
    )]))
}

/// Liveness state behind `/healthz`: build identity, uptime, and
/// stage-pipeline gauges. Shared between the router (which reports it)
/// and the [`crate::Pipeline`] (which marks completed passes).
pub struct Health {
    start: Instant,
    /// Completed pipeline passes.
    cycles: AtomicU64,
    /// Milliseconds from `start` to the last completed pass.
    last_cycle_ms: AtomicU64,
    spool: Option<PathBuf>,
}

impl Health {
    /// Fresh health state; `spool` is the ingest directory to report the
    /// depth of (None when no pipeline is configured).
    pub fn new(spool: Option<PathBuf>) -> Arc<Health> {
        Arc::new(Health {
            start: Instant::now(),
            cycles: AtomicU64::new(0),
            last_cycle_ms: AtomicU64::new(0),
            spool,
        })
    }

    /// Record a completed pipeline pass (called by the pipeline loop).
    pub fn mark_cycle(&self) {
        self.last_cycle_ms
            .store(self.start.elapsed().as_millis() as u64, Ordering::Relaxed);
        self.cycles.fetch_add(1, Ordering::Relaxed);
    }

    /// Pending (non-rejected) files in the spool; `None` when no spool
    /// is configured.
    fn spool_depth(&self) -> Option<i64> {
        let spool = self.spool.as_ref()?;
        let entries = std::fs::read_dir(spool).ok()?;
        Some(
            entries
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.is_file() && p.extension().is_none_or(|e| e != "rejected"))
                .count() as i64,
        )
    }

    /// The `/healthz` response body.
    fn body(&self) -> String {
        let cycles = self.cycles.load(Ordering::Relaxed);
        let mut t = BTreeMap::from([
            ("api".to_string(), Value::Str(API_VERSION.to_string())),
            ("status".to_string(), Value::Str("ok".to_string())),
            (
                "version".to_string(),
                Value::Str(env!("CARGO_PKG_VERSION").to_string()),
            ),
            (
                "engine".to_string(),
                Value::Str(nd_sweep::ENGINE_VERSION.to_string()),
            ),
            (
                "uptime_s".to_string(),
                Value::Float(self.start.elapsed().as_secs_f64()),
            ),
            (
                "stage_cycles".to_string(),
                Value::Int(cycles.min(i64::MAX as u64) as i64),
            ),
        ]);
        t.insert(
            "spool_depth".to_string(),
            self.spool_depth().map_or(Value::Null, Value::Int),
        );
        t.insert(
            "last_cycle_age_s".to_string(),
            if cycles == 0 {
                Value::Null
            } else {
                let last_ms = self.last_cycle_ms.load(Ordering::Relaxed);
                let now_ms = self.start.elapsed().as_millis() as u64;
                Value::Float(now_ms.saturating_sub(last_ms) as f64 / 1e3)
            },
        );
        Value::Table(t).to_json_pretty()
    }
}

/// A fresh request id when the client did not send `X-ND-Trace-Id`:
/// 16 hex digits from a SplitMix64 over (monotonic time, pid, sequence).
fn generate_trace_id() -> String {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let mut z = nd_obs::trace::now_ns()
        ^ ((std::process::id() as u64) << 32)
        ^ SEQ
            .fetch_add(1, Ordering::Relaxed)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    format!("{:016x}", z ^ (z >> 31))
}

/// The HTTP router: maps methods/paths to the planner and the control
/// endpoints, and owns per-request observability: the request's trace
/// id (honored from `X-ND-Trace-Id` or generated), the `serve.request`
/// span and everything under it stamped with that id, request counters,
/// per-endpoint latency histograms, and the access log.
pub struct App {
    planner: Arc<Planner>,
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
    health: Arc<Health>,
    access_log: bool,
}

impl App {
    /// Wire a router to a planner. `addr` is the server's own bound
    /// address (the shutdown handler pokes it to unblock the accept
    /// loop); `shutdown` is shared with [`http::Server::run`]. The
    /// default health state has no spool and the access log is off —
    /// see [`App::with_health`] / [`App::with_access_log`].
    pub fn new(planner: Arc<Planner>, shutdown: Arc<AtomicBool>, addr: SocketAddr) -> App {
        App {
            planner,
            shutdown,
            addr,
            health: Health::new(None),
            access_log: false,
        }
    }

    /// Report `health` from `/healthz` (share it with the pipeline via
    /// [`crate::Pipeline::with_health`]).
    pub fn with_health(mut self, health: Arc<Health>) -> App {
        self.health = health;
        self
    }

    /// Emit one structured access-log line per request to stderr.
    pub fn with_access_log(mut self, on: bool) -> App {
        self.access_log = on;
        self
    }

    /// Handle one HTTP request.
    pub fn route(&self, req: &http::Request) -> http::Response {
        let start = Instant::now();
        let trace_id: Arc<str> = match &req.trace_id {
            Some(id) => id.as_str().into(),
            None => generate_trace_id().into(),
        };
        // Install the id as this thread's trace context before opening
        // the request span: every span from here down — including pool
        // evaluation spans on worker threads — carries it.
        let _ctx = nd_obs::trace::set_context(Some(Arc::clone(&trace_id)));
        let _span = nd_obs::span!(
            "serve.request",
            method = req.method.as_str(),
            path = req.path.as_str()
        );
        nd_obs::metrics::inc("serve.requests");
        let resp = match self.dispatch(req) {
            Ok(resp) => resp,
            Err(err) => {
                nd_obs::metrics::inc(&format!("serve.errors.{}", err.code()));
                http::Response::json(err.status(), err.to_body())
            }
        };
        let us = start.elapsed().as_micros() as u64;
        nd_obs::metrics::observe("serve.request_us", us);
        if let Some(endpoint) = Endpoint::from_path(&req.path) {
            nd_obs::metrics::observe(&format!("serve.{}_us", endpoint.name()), us);
        }
        if self.access_log {
            eprintln!(
                "{}",
                Value::Table(BTreeMap::from([
                    ("t".to_string(), Value::Str("access".to_string())),
                    ("method".to_string(), Value::Str(req.method.clone())),
                    ("path".to_string(), Value::Str(req.path.clone())),
                    ("status".to_string(), Value::Int(resp.status as i64)),
                    ("us".to_string(), Value::Int(us as i64)),
                    (
                        "trace_id".to_string(),
                        Value::Str(trace_id.as_ref().to_string()),
                    ),
                ]))
                .to_json()
            );
        }
        resp.with_trace_id(trace_id.as_ref())
    }

    fn dispatch(&self, req: &http::Request) -> Result<http::Response, ApiError> {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => Ok(http::Response::json(200, self.health.body())),
            ("GET", "/v1/metrics") => match req.query.as_deref() {
                None => Ok(http::Response::json(
                    200,
                    nd_obs::metrics::snapshot().to_json(),
                )),
                Some("format=prometheus") => Ok(http::Response::text(
                    200,
                    nd_obs::metrics::snapshot().to_prometheus(),
                )),
                Some(other) => Err(ApiError::BadRequest(format!(
                    "unknown metrics query `{other}` (supported: format=prometheus)"
                ))),
            },
            ("POST", "/v1/shutdown") => {
                self.shutdown.store(true, Ordering::SeqCst);
                http::wake(self.addr);
                Ok(http::Response::json(200, status_body("shutting-down")))
            }
            ("POST", path) if Endpoint::from_path(path).is_some() => {
                let endpoint = Endpoint::from_path(path).expect("guarded");
                let parsed = parse_request(endpoint, &req.body)?;
                let body = self.planner.handle(&parsed)?;
                Ok(http::Response::json(200, body))
            }
            (_, path)
                if Endpoint::from_path(path).is_some()
                    || matches!(path, "/healthz" | "/v1/metrics" | "/v1/shutdown") =>
            {
                Err(ApiError::MethodNotAllowed(format!(
                    "{} does not accept {}",
                    path, req.method
                )))
            }
            (_, path) => Err(ApiError::NotFound(format!("no such endpoint `{path}`"))),
        }
    }
}

fn status_body(status: &str) -> String {
    Value::Table(BTreeMap::from([
        ("api".to_string(), Value::Str(API_VERSION.to_string())),
        ("status".to_string(), Value::Str(status.to_string())),
    ]))
    .to_json_pretty()
}
