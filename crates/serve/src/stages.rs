//! The background stage pipeline: **ingest → execute → prune**.
//!
//! Layout after reth's staged-sync design (`crates/stages`): each stage
//! is a small unit with an id and an `execute` step, and a `Pipeline`
//! runs them in order — either once ([`Pipeline::run_once`]) or on an
//! interval from a background thread ([`Pipeline::spawn`]).
//!
//! - **ingest** scans a spool directory for dropped-off planning specs
//!   (TOML or `.json`, same grammar as `nd-opt run`) and parses them;
//!   consumed files are deleted, unparseable ones renamed to
//!   `<name>.rejected` so they are inspected, not retried forever.
//! - **execute** runs every ingested spec through the [`Planner`] — the
//!   results land in the on-disk cache and the response memo, so the
//!   specs clients will ask for are warm before they ask.
//! - **prune** is `nd-sweep cache gc` wearing a stage id: it LRU-evicts
//!   the shared result cache down to a byte budget.

use crate::service::Planner;
use nd_opt::OptSpec;
use nd_sweep::ResultCache;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What a stage run accomplished, for the caller's log line.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StageReport {
    /// Items the stage processed (specs ingested / executed, cache
    /// entries evicted).
    pub processed: usize,
    /// Items that failed (unparseable spool files, failed searches).
    pub failed: usize,
}

/// Shared state flowing through one pipeline pass.
#[derive(Default)]
pub struct StageContext {
    /// Specs picked up by ingest, awaiting execute.
    pub pending: Vec<OptSpec>,
}

/// One pipeline stage.
pub trait Stage: Send {
    /// Stable identifier, used for metrics (`serve.stage.<id>.runs`) and
    /// trace spans.
    fn id(&self) -> &'static str;
    /// Run the stage once.
    fn execute(&self, ctx: &mut StageContext) -> StageReport;
}

/// Scan a spool directory for planning specs.
pub struct IngestStage {
    spool: PathBuf,
}

impl IngestStage {
    /// Watch `spool` for spec files.
    pub fn new(spool: impl Into<PathBuf>) -> IngestStage {
        IngestStage {
            spool: spool.into(),
        }
    }
}

impl Stage for IngestStage {
    fn id(&self) -> &'static str {
        "ingest"
    }

    fn execute(&self, ctx: &mut StageContext) -> StageReport {
        let mut report = StageReport::default();
        let Ok(entries) = std::fs::read_dir(&self.spool) else {
            return report; // no spool directory yet: nothing to do
        };
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_file() && p.extension().is_none_or(|e| e != "rejected"))
            .collect();
        paths.sort(); // deterministic pick-up order
        for path in paths {
            match OptSpec::from_file(&path) {
                Ok(spec) => {
                    ctx.pending.push(spec);
                    report.processed += 1;
                    let _ = std::fs::remove_file(&path);
                }
                Err(err) => {
                    report.failed += 1;
                    eprintln!("nd-serve: rejecting spool file {}: {err}", path.display());
                    let mut rejected = path.clone().into_os_string();
                    rejected.push(".rejected");
                    let _ = std::fs::rename(&path, rejected);
                }
            }
        }
        report
    }
}

/// Run ingested specs through the planner to pre-warm cache and memo.
pub struct ExecuteStage {
    planner: Arc<Planner>,
}

impl ExecuteStage {
    /// Execute against `planner` (the same one serving requests, so the
    /// memo warms too).
    pub fn new(planner: Arc<Planner>) -> ExecuteStage {
        ExecuteStage { planner }
    }
}

impl Stage for ExecuteStage {
    fn id(&self) -> &'static str {
        "execute"
    }

    fn execute(&self, ctx: &mut StageContext) -> StageReport {
        let mut report = StageReport::default();
        for spec in ctx.pending.drain(..) {
            let (result, _served) = self.planner.front_document(&spec);
            match result {
                Ok(_) => report.processed += 1,
                Err(err) => {
                    report.failed += 1;
                    eprintln!("nd-serve: spooled spec `{}` failed: {err}", spec.base.name);
                }
            }
        }
        report
    }
}

/// LRU-evict the result cache down to a byte budget (`cache gc` as a
/// pipeline stage).
pub struct PruneStage {
    cache: ResultCache,
    max_bytes: u64,
}

impl PruneStage {
    /// Prune `cache` down to `max_bytes`.
    pub fn new(cache: ResultCache, max_bytes: u64) -> PruneStage {
        PruneStage { cache, max_bytes }
    }
}

impl Stage for PruneStage {
    fn id(&self) -> &'static str {
        "prune"
    }

    fn execute(&self, _ctx: &mut StageContext) -> StageReport {
        let gc = self.cache.gc(self.max_bytes, false);
        nd_obs::metrics::add("serve.pruned_bytes", gc.evicted_bytes);
        StageReport {
            processed: gc.evicted_entries,
            failed: 0,
        }
    }
}

/// An ordered list of stages plus the run loop.
pub struct Pipeline {
    stages: Vec<Box<dyn Stage>>,
    health: Option<Arc<crate::service::Health>>,
}

impl Pipeline {
    /// Build a pipeline from stages, run in the given order.
    pub fn new(stages: Vec<Box<dyn Stage>>) -> Pipeline {
        Pipeline {
            stages,
            health: None,
        }
    }

    /// Mark completed passes on `health`, so `/healthz` reports the
    /// cycle count and the age of the last pass.
    pub fn with_health(mut self, health: Arc<crate::service::Health>) -> Pipeline {
        self.health = Some(health);
        self
    }

    /// Run every stage once, in order, threading a fresh context
    /// through. Returns `(id, report)` per stage.
    pub fn run_once(&self) -> Vec<(&'static str, StageReport)> {
        let _span = nd_obs::span!("serve.pipeline", stages = self.stages.len());
        let mut ctx = StageContext::default();
        let mut reports = Vec::with_capacity(self.stages.len());
        for stage in &self.stages {
            let _span = nd_obs::span!("serve.stage", id = stage.id());
            let report = stage.execute(&mut ctx);
            nd_obs::metrics::inc(&format!("serve.stage.{}.runs", stage.id()));
            nd_obs::metrics::add(
                &format!("serve.stage.{}.processed", stage.id()),
                report.processed as u64,
            );
            reports.push((stage.id(), report));
        }
        if let Some(health) = &self.health {
            health.mark_cycle();
        }
        reports
    }

    /// Run the pipeline every `interval` on a background thread until
    /// `shutdown` flips (checked once a second so shutdown is prompt
    /// even with long intervals). Join the returned handle on exit.
    pub fn spawn(
        self,
        interval: Duration,
        shutdown: Arc<AtomicBool>,
    ) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            let tick = Duration::from_secs(1);
            loop {
                let mut waited = Duration::ZERO;
                while waited < interval {
                    if shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    let step = tick.min(interval - waited);
                    std::thread::sleep(step);
                    waited += step;
                }
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                self.run_once();
            }
        })
    }
}
