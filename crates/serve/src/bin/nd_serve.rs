//! The `nd-serve` CLI: run the always-on discovery-planning daemon.
//!
//! ```text
//! nd-serve serve [--addr 127.0.0.1:7077] [OPTIONS]
//! ```

use nd_opt::OptOptions;
use nd_serve::{http, App, Pipeline, Planner, Stage};
use nd_sweep::{ResultCache, ENGINE_VERSION};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

fn main() -> ExitCode {
    if let Err(e) = nd_obs::trace::init_from_env() {
        eprintln!("nd-serve: cannot open $ND_TRACE: {e}");
        return ExitCode::FAILURE;
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("--version" | "-V" | "version") => {
            println!(
                "nd-serve {} (engine {ENGINE_VERSION}, api {})",
                env!("CARGO_PKG_VERSION"),
                nd_serve::API_VERSION
            );
            ExitCode::SUCCESS
        }
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n{USAGE}");
            ExitCode::FAILURE
        }
    };
    nd_obs::trace::shutdown(); // flush any --trace-out / ND_TRACE sink
    code
}

const USAGE: &str = "\
nd-serve — always-on discovery-planning daemon

Serves the nd-opt planning queries (front / best / gap) over HTTP/JSON
behind the versioned nd-serve-api/v1 envelope. Answers come from an
in-memory response memo, then the content-addressed result cache shared
with nd-sweep/nd-opt, then fresh parallel evaluation; identical
concurrent requests coalesce onto one computation.

USAGE:
    nd-serve serve [OPTIONS]   run the daemon (Ctrl-C or POST /v1/shutdown)
    nd-serve --version         print version + engine/API versions, then exit
    nd-serve --help            print this help, then exit

ENDPOINTS:
    POST /v1/front     Pareto front per protocol
    POST /v1/best      best configuration within a duty-cycle budget
    POST /v1/gap       per-protocol gap-to-bound summary
    GET  /healthz      liveness probe: version, engine, uptime, spool
                       depth, stage-pipeline cycle gauges
    GET  /v1/metrics   metrics snapshot (requires --stats); add
                       ?format=prometheus for text exposition with
                       p50/p95/p99 summaries
    POST /v1/shutdown  graceful stop

Every request is answered with an `X-ND-Trace-Id` header: the client's
own id when it sent that header, a generated one otherwise. With tracing
on (--trace-out / $ND_TRACE) every span emitted while handling the
request — including planner-pool evaluation spans on worker threads —
carries that id in its `ctx` field; filter with
`nd-trace critical-path t.jsonl --ctx <id>`.

OPTIONS:
    --addr HOST:PORT   listen address (default: 127.0.0.1:7077; port 0
                       picks a free port, printed on startup)
    --workers N        connection worker threads (default: 4×cores,
                       min 32 — sized for coalescing herds)
    --threads N        evaluation worker threads (default: all cores)
    --no-cache         skip the on-disk result cache (memo still works)
    --cache-dir DIR    cache location (default: $ND_SWEEP_CACHE or
                       target/nd-sweep-cache)
    --memo-capacity N  in-memory response memo entries (default: 1024)
    --quiet            suppress the startup line and the per-request
                       access log (one JSON line per request on stderr)

BACKGROUND PIPELINE (ingest → execute → prune):
    --spool DIR        pick up nd-opt spec files dropped here, pre-warm
                       cache and memo, delete them (bad files are
                       renamed *.rejected)
    --cache-max-bytes N  prune stage: LRU-evict the result cache to this
                       budget per pass (suffixes K/M/G)
    --stage-interval S seconds between pipeline passes (default: 60)

OBSERVABILITY:
    --stats            enable the metrics registry: GET /v1/metrics
                       serves live snapshots, and a final snapshot is
                       printed on shutdown
    --trace-out PATH   write a JSONL span trace (serve.request spans
                       with method/path; overrides $ND_TRACE)
";

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("nd-serve: {msg}");
    ExitCode::FAILURE
}

struct Cli {
    addr: String,
    workers: usize,
    opts: OptOptions,
    memo_capacity: usize,
    spool: Option<PathBuf>,
    cache_max_bytes: Option<u64>,
    stage_interval: Duration,
    stats: bool,
    quiet: bool,
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        addr: "127.0.0.1:7077".to_string(),
        workers: default_workers(),
        opts: OptOptions {
            strict_cache: true, // a server reports corrupt state, never rewrites it
            ..OptOptions::default()
        },
        memo_capacity: 1024,
        spool: None,
        cache_max_bytes: None,
        stage_interval: Duration::from_secs(60),
        stats: false,
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{what} needs a value"))
        };
        match arg.as_str() {
            "--addr" => cli.addr = value("--addr")?.to_string(),
            "--workers" => cli.workers = parse_pos(value("--workers")?, "--workers")?,
            "--threads" => cli.opts.threads = Some(parse_pos(value("--threads")?, "--threads")?),
            "--no-cache" => cli.opts.use_cache = false,
            "--cache-dir" => cli.opts.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--memo-capacity" => {
                cli.memo_capacity = parse_pos(value("--memo-capacity")?, "--memo-capacity")?
            }
            "--spool" => cli.spool = Some(PathBuf::from(value("--spool")?)),
            "--cache-max-bytes" => {
                cli.cache_max_bytes = Some(parse_bytes(value("--cache-max-bytes")?)?)
            }
            "--stage-interval" => {
                cli.stage_interval = Duration::from_secs(parse_pos(
                    value("--stage-interval")?,
                    "--stage-interval",
                )? as u64)
            }
            "--stats" => cli.stats = true,
            "--quiet" => cli.quiet = true,
            "--trace-out" => nd_obs::trace::init_file(std::path::Path::new(value("--trace-out")?))
                .map_err(|e| format!("--trace-out: {e}"))?,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(cli)
}

fn default_workers() -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    (cores * 4).max(32)
}

fn parse_pos(s: &str, what: &str) -> Result<usize, String> {
    s.parse::<usize>()
        .ok()
        .filter(|n| *n > 0)
        .ok_or_else(|| format!("{what} needs a positive integer"))
}

/// Parse a byte count with an optional K/M/G suffix (powers of 1024).
fn parse_bytes(s: &str) -> Result<u64, String> {
    let (digits, mult) = match s.as_bytes().last() {
        Some(b'K' | b'k') => (&s[..s.len() - 1], 1u64 << 10),
        Some(b'M' | b'm') => (&s[..s.len() - 1], 1u64 << 20),
        Some(b'G' | b'g') => (&s[..s.len() - 1], 1u64 << 30),
        _ => (s, 1),
    };
    digits
        .parse::<u64>()
        .map(|n| n * mult)
        .map_err(|_| format!("--cache-max-bytes: bad byte count `{s}` (use N, NK, NM or NG)"))
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let cli = match parse_cli(args) {
        Ok(c) => c,
        Err(e) => return fail(e),
    };
    if cli.stats {
        nd_obs::metrics::set_enabled(true);
    }

    let planner = Arc::new(Planner::new(cli.opts.clone(), cli.memo_capacity));
    let server = match http::Server::bind(&cli.addr) {
        Ok(s) => s,
        Err(e) => return fail(format!("cannot bind {}: {e}", cli.addr)),
    };
    let addr = server.addr();
    let shutdown = Arc::new(AtomicBool::new(false));

    let mut stages: Vec<Box<dyn Stage>> = Vec::new();
    if let Some(spool) = &cli.spool {
        stages.push(Box::new(nd_serve::IngestStage::new(spool.clone())));
        stages.push(Box::new(nd_serve::ExecuteStage::new(Arc::clone(&planner))));
    }
    if let Some(max_bytes) = cli.cache_max_bytes {
        if cli.opts.use_cache {
            let dir = cli
                .opts
                .cache_dir
                .clone()
                .unwrap_or_else(ResultCache::default_dir);
            stages.push(Box::new(nd_serve::PruneStage::new(
                ResultCache::at(dir),
                max_bytes,
            )));
        }
    }
    let health = nd_serve::Health::new(cli.spool.clone());
    let pipeline = (!stages.is_empty()).then(|| {
        Pipeline::new(stages)
            .with_health(Arc::clone(&health))
            .spawn(cli.stage_interval, Arc::clone(&shutdown))
    });

    if !cli.quiet {
        println!(
            "nd-serve: listening on http://{addr} ({})",
            nd_serve::API_VERSION
        );
    }

    let app = App::new(Arc::clone(&planner), Arc::clone(&shutdown), addr)
        .with_health(health)
        .with_access_log(!cli.quiet);
    server.run(
        cli.workers,
        Arc::clone(&shutdown),
        Arc::new(move |req: &http::Request| app.route(req)),
    );

    if let Some(handle) = pipeline {
        let _ = handle.join();
    }
    if cli.stats {
        print!("{}", nd_obs::metrics::snapshot().to_json());
    }
    if !cli.quiet {
        println!("nd-serve: stopped");
    }
    ExitCode::SUCCESS
}
