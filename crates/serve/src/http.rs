//! A minimal HTTP/1.1 server on [`std::net::TcpListener`] — zero
//! dependencies, matching the workspace convention.
//!
//! Scope: exactly what the planning API needs. Request line + headers +
//! `Content-Length` bodies, keep-alive (HTTP/1.1 default) with an idle
//! read timeout, JSON responses. No chunked encoding, no TLS, no HTTP/2.
//!
//! Threading: one accept loop hands connections to a fixed pool of
//! worker threads over a channel; each worker drives one connection at a
//! time through its keep-alive lifetime. The pool size bounds concurrent
//! *connections*, so size it for the expected herd (the `nd-serve`
//! default is generous — blocked workers are cheap, they mostly wait on
//! the coalescing condvar or the idle-read timeout).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Largest accepted request body; larger requests get a 400. Planning
/// specs are a few hundred bytes — a megabyte is already absurd.
const MAX_BODY: usize = 1 << 20;

/// How long a keep-alive connection may sit idle between requests before
/// the worker reclaims itself.
const IDLE_TIMEOUT: Duration = Duration::from_secs(5);

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// The method verb, uppercased as received (`GET`, `POST`, …).
    pub method: String,
    /// The request path, query string split off.
    pub path: String,
    /// The query string after `?`, if any (`format=prometheus`). Not
    /// further decoded — the API's queries are single bare pairs.
    pub query: Option<String>,
    /// The `X-ND-Trace-Id` header, if the client sent one.
    pub trace_id: Option<String>,
    /// The request body (empty when no `Content-Length`).
    pub body: String,
    keep_alive: bool,
}

/// One response: a status code, a body, and its content type.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: String,
    /// Wire `Content-Type` (defaults to `application/json`).
    pub content_type: &'static str,
    /// Trace id echoed back as `X-ND-Trace-Id` (the router sets this on
    /// every response so clients can find their spans in the trace).
    pub trace_id: Option<String>,
}

impl Response {
    /// Build a JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            body: body.into(),
            content_type: "application/json",
            trace_id: None,
        }
    }

    /// Build a plain-text response (prometheus exposition).
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            body: body.into(),
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            trace_id: None,
        }
    }

    /// Attach the trace id to echo on the wire.
    pub fn with_trace_id(mut self, id: impl Into<String>) -> Response {
        self.trace_id = Some(id.into());
        self
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

enum ReadOutcome {
    Request(Request),
    /// Peer closed (or idled out) between requests — normal end of a
    /// keep-alive connection.
    Closed,
    /// The bytes on the wire are not HTTP we accept; answer 400, close.
    Malformed(String),
}

fn read_request(reader: &mut BufReader<TcpStream>) -> ReadOutcome {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) | Err(_) => return ReadOutcome::Closed,
        Ok(_) => {}
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return ReadOutcome::Malformed("malformed request line".into());
    };
    if !version.starts_with("HTTP/1.") {
        return ReadOutcome::Malformed(format!("unsupported protocol version `{version}`"));
    }
    // HTTP/1.1 defaults to keep-alive; a Connection header overrides
    let mut keep_alive = version == "HTTP/1.1";
    let mut content_length = 0usize;
    let mut trace_id: Option<String> = None;
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) | Err(_) => return ReadOutcome::Closed,
            Ok(_) => {}
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return ReadOutcome::Malformed(format!("malformed header `{header}`"));
        };
        let value = value.trim();
        match name.to_ascii_lowercase().as_str() {
            "content-length" => match value.parse::<usize>() {
                Ok(n) if n <= MAX_BODY => content_length = n,
                Ok(_) => {
                    return ReadOutcome::Malformed(format!(
                        "request body over the {MAX_BODY}-byte limit"
                    ))
                }
                Err(_) => return ReadOutcome::Malformed("bad Content-Length".into()),
            },
            "connection" => keep_alive = !value.eq_ignore_ascii_case("close"),
            "x-nd-trace-id" if !value.is_empty() => trace_id = Some(value.to_string()),
            _ => {}
        }
    }
    let mut body = vec![0u8; content_length];
    if reader.read_exact(&mut body).is_err() {
        return ReadOutcome::Closed;
    }
    let Ok(body) = String::from_utf8(body) else {
        return ReadOutcome::Malformed("request body is not UTF-8".into());
    };
    let (path, query) = match path.split_once('?') {
        Some((p, q)) if !q.is_empty() => (p, Some(q.to_string())),
        Some((p, _)) => (p, None),
        None => (path, None),
    };
    ReadOutcome::Request(Request {
        method: method.to_string(),
        path: path.to_string(),
        query,
        trace_id,
        body,
        keep_alive,
    })
}

fn write_response(
    stream: &mut TcpStream,
    resp: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    // head + body in ONE write: a split write interacts with Nagle +
    // delayed ACK and costs tens of milliseconds per response on loopback
    let mut wire = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    if let Some(id) = &resp.trace_id {
        // Header values may not carry CR/LF; ids are client-supplied.
        let clean: String = id.chars().filter(|c| !c.is_control()).collect();
        wire.push_str(&format!("X-ND-Trace-Id: {clean}\r\n"));
    }
    wire.push_str("\r\n");
    wire.push_str(&resp.body);
    stream.write_all(wire.as_bytes())?;
    stream.flush()
}

/// The server: a bound listener plus the worker-pool run loop.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
}

impl Server {
    /// Bind an address (`127.0.0.1:0` picks a free port — read it back
    /// via [`Server::addr`]).
    pub fn bind(addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server { listener, addr })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serve until `shutdown` flips: accept connections, dispatch them to
    /// `workers` threads, drive each through its keep-alive lifetime with
    /// `handler`. Blocks; joins all workers before returning. The accept
    /// loop only observes `shutdown` after an accept, so whoever flips it
    /// must also poke the listener ([`wake`]) — the `/v1/shutdown`
    /// handler does.
    pub fn run<H>(self, workers: usize, shutdown: Arc<AtomicBool>, handler: Arc<H>)
    where
        H: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let connections = Arc::new(AtomicI64::new(0));
        let mut pool = Vec::with_capacity(workers);
        for _ in 0..workers {
            let rx = Arc::clone(&rx);
            let handler = Arc::clone(&handler);
            let shutdown = Arc::clone(&shutdown);
            let connections = Arc::clone(&connections);
            pool.push(std::thread::spawn(move || loop {
                let stream = match rx.lock().unwrap().recv() {
                    Ok(s) => s,
                    Err(_) => return, // accept loop gone: drain complete
                };
                let live = connections.fetch_add(1, Ordering::Relaxed) + 1;
                nd_obs::metrics::gauge_max("serve.connections_peak", live as f64);
                handle_connection(stream, handler.as_ref(), &shutdown);
                connections.fetch_sub(1, Ordering::Relaxed);
            }));
        }
        while !shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    nd_obs::metrics::inc("serve.accepted");
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(_) => continue,
            }
        }
        drop(tx);
        for worker in pool {
            let _ = worker.join();
        }
    }
}

/// Unblock a [`Server::run`] accept loop after flipping its shutdown
/// flag, by making (and immediately dropping) one throwaway connection.
pub fn wake(addr: SocketAddr) {
    let _ = TcpStream::connect(addr);
}

fn handle_connection<H>(stream: TcpStream, handler: &H, shutdown: &AtomicBool)
where
    H: Fn(&Request) -> Response,
{
    let _ = stream.set_read_timeout(Some(IDLE_TIMEOUT));
    let _ = stream.set_nodelay(true); // latency over batching, always
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader) {
            ReadOutcome::Closed => return,
            ReadOutcome::Malformed(message) => {
                let body = crate::api::ApiError::BadRequest(message).to_body();
                let _ = write_response(&mut writer, &Response::json(400, body), false);
                return;
            }
            ReadOutcome::Request(req) => {
                let resp = handler(&req);
                let keep_alive = req.keep_alive && !shutdown.load(Ordering::SeqCst);
                if write_response(&mut writer, &resp, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
        }
    }
}
