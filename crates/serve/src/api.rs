//! The versioned request/response API: `nd-serve-api/v1`.
//!
//! Requests and responses are JSON envelopes carrying an explicit `"api"`
//! version tag, so clients and servers can detect a grammar mismatch
//! instead of mis-parsing each other. The query *payload* is not a new
//! grammar: the `"spec"` object inside a request is exactly the
//! [`OptSpec`] document the `nd-opt` CLI reads from disk — one spec
//! grammar for batch files and service requests.
//!
//! ```json
//! {
//!   "api": "nd-serve-api/v1",
//!   "spec": { "name": "q", "backend": "exact", "metric": "two-way",
//!             "opt": { "protocols": ["optimal"] } },
//!   "budget": 0.01
//! }
//! ```
//!
//! Errors are typed ([`ApiError`]): every failure maps to a stable
//! machine-readable `code` plus an HTTP status, and the response envelope
//! carries both. See the README's "Serving" section for the catalog.

use nd_opt::OptSpec;
use nd_sweep::value::{parse_json, Value};
use std::collections::BTreeMap;

/// The request/response envelope version this server speaks.
pub const API_VERSION: &str = "nd-serve-api/v1";

/// The three planning queries, mirroring the `nd-opt` subcommands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /v1/front` — the full Pareto front per protocol.
    Front,
    /// `POST /v1/best` — the best configuration within a duty-cycle
    /// budget (requires `"budget"`).
    Best,
    /// `POST /v1/gap` — per-protocol distance-to-optimality summary.
    Gap,
}

impl Endpoint {
    /// Resolve a URL path to an endpoint.
    pub fn from_path(path: &str) -> Option<Endpoint> {
        match path {
            "/v1/front" => Some(Endpoint::Front),
            "/v1/best" => Some(Endpoint::Best),
            "/v1/gap" => Some(Endpoint::Gap),
            _ => None,
        }
    }

    /// The short name used in metrics (`serve.<name>_us`) and spans.
    pub fn name(&self) -> &'static str {
        match self {
            Endpoint::Front => "front",
            Endpoint::Best => "best",
            Endpoint::Gap => "gap",
        }
    }
}

/// A parsed, validated planning request.
#[derive(Debug)]
pub struct Request {
    /// Which query to answer.
    pub endpoint: Endpoint,
    /// The search the query is over — the `nd-opt` spec grammar verbatim.
    pub spec: OptSpec,
    /// Duty-cycle budget; present exactly for [`Endpoint::Best`].
    pub budget: Option<f64>,
}

/// The typed error taxonomy. Every variant has a stable wire `code` and
/// an HTTP status; the split follows *whose fault it is and when it was
/// knowable*: 400s are malformed input, 422s are well-formed requests the
/// search cannot satisfy, 500s are server-side state damage.
#[derive(Clone, Debug, PartialEq)]
pub enum ApiError {
    /// 400 `bad-request`: the envelope itself is malformed (invalid
    /// JSON, missing/unsupported `"api"` tag, unknown keys, bad budget).
    BadRequest(String),
    /// 400 `bad-spec`: the envelope is fine but the `"spec"` payload
    /// fails the `nd-opt` grammar or its validation rules.
    BadSpec(String),
    /// 422 `infeasible`: a valid spec the search cannot run or satisfy
    /// (e.g. an eta range outside the protocol's declared duty-cycle
    /// range, or no front point within a `best` budget).
    Infeasible(String),
    /// 422 `empty-front`: the search ran but every candidate was
    /// censored; `censored` carries the per-reason counts so the client
    /// learns *why* (mirrors the `nd-opt` CLI diagnostic).
    EmptyFront {
        /// Human-readable summary naming the empty protocols.
        message: String,
        /// Censor reason → candidate count, aggregated over empty fronts.
        censored: BTreeMap<String, i64>,
    },
    /// 500 `corrupt-cache`: a cache entry the query needed exists but is
    /// unparseable. The server refuses to silently recompute (that would
    /// rewrite damaged state); `nd-sweep cache gc` or a batch re-run
    /// heals the entry.
    CorruptCache(String),
    /// 500 `internal`: anything else that should never happen.
    Internal(String),
    /// 404 `not-found`: no such endpoint.
    NotFound(String),
    /// 405 `method-not-allowed`: right path, wrong HTTP method.
    MethodNotAllowed(String),
}

impl ApiError {
    /// The stable machine-readable error code.
    pub fn code(&self) -> &'static str {
        match self {
            ApiError::BadRequest(_) => "bad-request",
            ApiError::BadSpec(_) => "bad-spec",
            ApiError::Infeasible(_) => "infeasible",
            ApiError::EmptyFront { .. } => "empty-front",
            ApiError::CorruptCache(_) => "corrupt-cache",
            ApiError::Internal(_) => "internal",
            ApiError::NotFound(_) => "not-found",
            ApiError::MethodNotAllowed(_) => "method-not-allowed",
        }
    }

    /// The HTTP status the code maps to.
    pub fn status(&self) -> u16 {
        match self {
            ApiError::BadRequest(_) | ApiError::BadSpec(_) => 400,
            ApiError::Infeasible(_) | ApiError::EmptyFront { .. } => 422,
            ApiError::CorruptCache(_) | ApiError::Internal(_) => 500,
            ApiError::NotFound(_) => 404,
            ApiError::MethodNotAllowed(_) => 405,
        }
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        match self {
            ApiError::BadRequest(m)
            | ApiError::BadSpec(m)
            | ApiError::Infeasible(m)
            | ApiError::CorruptCache(m)
            | ApiError::Internal(m)
            | ApiError::NotFound(m)
            | ApiError::MethodNotAllowed(m) => m,
            ApiError::EmptyFront { message, .. } => message,
        }
    }

    /// Render the error response envelope.
    pub fn to_body(&self) -> String {
        let mut error = BTreeMap::new();
        error.insert("code".to_string(), Value::Str(self.code().to_string()));
        error.insert(
            "message".to_string(),
            Value::Str(self.message().to_string()),
        );
        if let ApiError::EmptyFront { censored, .. } = self {
            error.insert(
                "censored".to_string(),
                Value::Table(
                    censored
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Int(*v)))
                        .collect(),
                ),
            );
        }
        let mut doc = BTreeMap::new();
        doc.insert("api".to_string(), Value::Str(API_VERSION.to_string()));
        doc.insert("error".to_string(), Value::Table(error));
        Value::Table(doc).to_json_pretty()
    }

    /// Classify a search failure ([`nd_opt::OptError`] message): strict
    /// cache-corruption aborts carry the [`nd_opt::CORRUPT_CACHE`] prefix
    /// and become 500s; everything else a search refuses at runtime is a
    /// well-formed-but-unsatisfiable request.
    pub fn from_opt_error(message: &str) -> ApiError {
        if message.starts_with(nd_opt::CORRUPT_CACHE) {
            ApiError::CorruptCache(message.to_string())
        } else {
            ApiError::Infeasible(message.to_string())
        }
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code(), self.message())
    }
}

impl std::error::Error for ApiError {}

/// Parse and validate one request body for `endpoint`.
///
/// The envelope must carry `"api": "nd-serve-api/v1"` and a `"spec"`
/// object; `best` additionally requires `"budget"` in (0, 1]. Unknown
/// keys are rejected — silent tolerance would make future envelope
/// versions ambiguous.
pub fn parse_request(endpoint: Endpoint, body: &str) -> Result<Request, ApiError> {
    let v = parse_json(body)
        .map_err(|e| ApiError::BadRequest(format!("request body is not valid JSON: {e}")))?;
    let top = v
        .as_table()
        .ok_or_else(|| ApiError::BadRequest("request body must be a JSON object".into()))?;

    match top.get("api").and_then(Value::as_str) {
        Some(tag) if tag == API_VERSION => {}
        Some(tag) => {
            return Err(ApiError::BadRequest(format!(
                "unsupported api version `{tag}` (this server speaks {API_VERSION})"
            )))
        }
        None => {
            return Err(ApiError::BadRequest(format!(
                "request needs \"api\": \"{API_VERSION}\""
            )))
        }
    }
    for key in top.keys() {
        let known = match key.as_str() {
            "api" | "spec" => true,
            "budget" => endpoint == Endpoint::Best,
            _ => false,
        };
        if !known {
            return Err(ApiError::BadRequest(format!(
                "unknown request key `{key}` for /v1/{}",
                endpoint.name()
            )));
        }
    }

    let spec_value = top.get("spec").ok_or_else(|| {
        ApiError::BadRequest("request needs a \"spec\" object (the nd-opt spec grammar)".into())
    })?;
    let spec = OptSpec::from_value(spec_value).map_err(|e| ApiError::BadSpec(e.to_string()))?;

    let budget = match endpoint {
        Endpoint::Best => Some(
            top.get("budget")
                .and_then(Value::as_f64)
                .filter(|b| *b > 0.0 && *b <= 1.0)
                .ok_or_else(|| {
                    ApiError::BadRequest("/v1/best needs \"budget\": a duty cycle in (0, 1]".into())
                })?,
        ),
        _ => None,
    };

    Ok(Request {
        endpoint,
        spec,
        budget,
    })
}

/// Render a success response envelope: the result document plus the
/// `served` block describing how the answer was produced (memo hit,
/// coalesced onto an in-flight computation, evaluations executed).
pub fn success_body(result: Value, served: Value) -> String {
    let mut doc = BTreeMap::new();
    doc.insert("api".to_string(), Value::Str(API_VERSION.to_string()));
    doc.insert("result".to_string(), result);
    doc.insert("served".to_string(), served);
    Value::Table(doc).to_json_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(json: &str) -> String {
        json.replace("$API", API_VERSION)
    }

    const SPEC: &str = r#""spec": {"name": "q", "backend": "exact", "metric": "two-way",
        "opt": {"protocols": ["optimal"]}}"#;

    #[test]
    fn front_request_roundtrips_the_opt_grammar() {
        let req = parse_request(
            Endpoint::Front,
            &body(&format!(r#"{{"api": "$API", {SPEC}}}"#)),
        )
        .unwrap();
        assert_eq!(req.endpoint, Endpoint::Front);
        assert_eq!(req.spec.protocols, vec!["optimal-slotless"]);
        assert_eq!(req.budget, None);
        // the request spec hashes like the identical CLI spec file would
        let cli = OptSpec::from_toml_str(
            "name = \"q\"\nbackend = \"exact\"\nmetric = \"two-way\"\n[opt]\nprotocols = [\"optimal\"]\n",
        )
        .unwrap();
        assert_eq!(req.spec.content_hash(), cli.content_hash());
    }

    #[test]
    fn api_tag_is_mandatory_and_versioned() {
        let missing = parse_request(Endpoint::Front, &body(&format!("{{{SPEC}}}"))).unwrap_err();
        assert_eq!(missing.code(), "bad-request");
        let wrong = parse_request(
            Endpoint::Front,
            &body(&format!(r#"{{"api": "nd-serve-api/v2", {SPEC}}}"#)),
        )
        .unwrap_err();
        assert_eq!(wrong.code(), "bad-request");
        assert!(wrong.message().contains("nd-serve-api/v2"));
    }

    #[test]
    fn unknown_keys_and_misplaced_budget_are_rejected() {
        let unknown = parse_request(
            Endpoint::Front,
            &body(&format!(r#"{{"api": "$API", "zap": 1, {SPEC}}}"#)),
        )
        .unwrap_err();
        assert_eq!(unknown.code(), "bad-request");
        // budget is a /v1/best key only
        let misplaced = parse_request(
            Endpoint::Gap,
            &body(&format!(r#"{{"api": "$API", "budget": 0.01, {SPEC}}}"#)),
        )
        .unwrap_err();
        assert_eq!(misplaced.code(), "bad-request");
    }

    #[test]
    fn best_needs_a_unit_budget() {
        let missing = parse_request(
            Endpoint::Best,
            &body(&format!(r#"{{"api": "$API", {SPEC}}}"#)),
        )
        .unwrap_err();
        assert_eq!(missing.code(), "bad-request");
        let out_of_range = parse_request(
            Endpoint::Best,
            &body(&format!(r#"{{"api": "$API", "budget": 1.5, {SPEC}}}"#)),
        )
        .unwrap_err();
        assert_eq!(out_of_range.code(), "bad-request");
        let ok = parse_request(
            Endpoint::Best,
            &body(&format!(r#"{{"api": "$API", "budget": 0.05, {SPEC}}}"#)),
        )
        .unwrap();
        assert_eq!(ok.budget, Some(0.05));
    }

    #[test]
    fn bad_specs_get_their_own_code() {
        let err = parse_request(
            Endpoint::Front,
            &body(r#"{"api": "$API", "spec": {"backend": "exact", "opt": {}}}"#),
        )
        .unwrap_err();
        assert_eq!(err.code(), "bad-spec");
        let not_json = parse_request(Endpoint::Front, "{ not json").unwrap_err();
        assert_eq!(not_json.code(), "bad-request");
    }

    #[test]
    fn error_bodies_carry_code_status_and_censoring() {
        let err = ApiError::EmptyFront {
            message: "optimal-slotless: empty front".into(),
            censored: BTreeMap::from([("undiscovered-offsets".to_string(), 12)]),
        };
        assert_eq!(err.status(), 422);
        let doc = parse_json(&err.to_body()).unwrap();
        let t = doc.as_table().unwrap();
        assert_eq!(t["api"].as_str(), Some(API_VERSION));
        let e = t["error"].as_table().unwrap();
        assert_eq!(e["code"].as_str(), Some("empty-front"));
        assert_eq!(
            e["censored"].as_table().unwrap()["undiscovered-offsets"].as_i64(),
            Some(12)
        );
    }

    #[test]
    fn opt_errors_split_corrupt_from_infeasible() {
        let corrupt = ApiError::from_opt_error("corrupt-cache: corrupt cache entry ab12");
        assert_eq!(corrupt.code(), "corrupt-cache");
        assert_eq!(corrupt.status(), 500);
        let infeasible = ApiError::from_opt_error("eta range [0.9, 1] does not intersect");
        assert_eq!(infeasible.code(), "infeasible");
        assert_eq!(infeasible.status(), 422);
    }

    #[test]
    fn infeasible_search_spaces_never_surface_as_server_errors() {
        // the optimizer's typed missing-`eta` error (a parameter space
        // with no duty-cycle axis cannot host a duty-cycle front) must
        // cross the wire as 422 infeasible, never as a 500 — the exact
        // message nd-opt's candidate translation produces
        let err = ApiError::from_opt_error(
            "optimization failed: custom: parameter space declares no `eta` axis, \
             so a duty-cycle front cannot be searched over it (infeasible search space)",
        );
        assert_eq!(err.code(), "infeasible");
        assert_eq!(err.status(), 422);
        assert_ne!(err.status(), 500);
    }
}
