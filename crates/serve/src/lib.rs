//! # nd-serve — always-on discovery planning behind a versioned API
//!
//! The batch tools answer "what is the optimal schedule?" once per
//! invocation; this crate keeps the answer *on tap*. `nd-serve` is a
//! long-running daemon, hand-rolled on [`std::net::TcpListener`] (zero
//! registry dependencies, like everything in this workspace), that
//! answers the `nd-opt` planning queries — `front`, `best`, `gap` —
//! over HTTP/JSON.
//!
//! Layers, top to bottom:
//!
//! - **[`api`]** — the `nd-serve-api/v1` envelope: explicit version
//!   tags on every request and response, a typed error taxonomy with
//!   stable wire codes, and a query payload that *is* the `nd-opt` spec
//!   grammar ([`nd_opt::OptSpec::from_value`]) — CLI spec files and
//!   service requests are one grammar with one content hash.
//! - **[`service`]** — the [`Planner`]: an in-memory memo over
//!   completed front documents plus *request coalescing* (N concurrent
//!   identical cache-miss requests cost exactly one evaluation,
//!   observable via the `serve.coalesced` counter), backed by the
//!   shared on-disk [`nd_sweep::ResultCache`]; misses evaluate on the
//!   same `pool::run_parallel` worker pool the CLIs use. The [`App`]
//!   router adds per-request `serve.request` spans and per-endpoint
//!   latency histograms.
//! - **[`stages`]** — a background **ingest → execute → prune**
//!   pipeline (layout after reth's staged sync): spool-directory spec
//!   pickup, pre-warming execution, and cache GC as the prune stage.
//! - **[`http`]** — the minimal HTTP/1.1 transport: keep-alive, bounded
//!   bodies, a fixed worker pool off one accept loop.
//!
//! Start it and ask:
//!
//! ```text
//! $ nd-serve serve --addr 127.0.0.1:7077 --stats &
//! $ curl -s -X POST 127.0.0.1:7077/v1/front -d '{
//!     "api": "nd-serve-api/v1",
//!     "spec": {"name": "q", "backend": "exact", "metric": "two-way",
//!              "opt": {"protocols": ["optimal"]}}}'
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod api;
pub mod http;
pub mod service;
pub mod stages;

pub use api::{parse_request, success_body, ApiError, Endpoint, Request, API_VERSION};
pub use service::{App, Computed, Health, Planner, Served};
pub use stages::{
    ExecuteStage, IngestStage, Pipeline, PruneStage, Stage, StageContext, StageReport,
};
