//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the API subset the workspace uses — `RngCore`, `Rng`
//! (`gen`, `gen_range`, `gen_bool`), `SeedableRng::seed_from_u64` and
//! `rngs::StdRng` — with the same trait shapes as `rand 0.8`, so swapping
//! the real crate back in is a one-line manifest change.
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64: deterministic
//! for a given seed (the property every experiment and test in this
//! workspace relies on), statistically solid, and fast. It does **not**
//! reproduce the byte stream of upstream `StdRng` (ChaCha12); nothing in
//! the workspace depends on the concrete stream, only on determinism.

#![warn(missing_docs)]

/// The core of a random number generator: a source of uniform `u32`/`u64`
/// words. Object-safe; simulation behaviours take `&mut dyn RngCore`.
pub trait RngCore {
    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32;
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types samplable uniformly from an `RngCore` (the role of
/// `Standard: Distribution<T>` in upstream `rand`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a uniform value can be drawn from (`gen_range` argument).
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` by 128-bit widening multiply (Lemire's
/// unbiased-enough fast path; the negligible bias is irrelevant for
/// simulation phases and far below any tolerance asserted in tests).
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + bounded_u64(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u64, u32, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = end.wrapping_sub(start) as $u as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_signed_range!(i64 => u64, i32 => u32);

impl SampleRange<i128> for core::ops::Range<i128> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> i128 {
        assert!(self.start < self.end, "empty range in gen_range");
        let span = self.end.wrapping_sub(self.start) as u128;
        let draw = if span <= u64::MAX as u128 {
            bounded_u64(rng, span as u64) as u128
        } else {
            // spans beyond 2^64: take a full 128-bit word modulo the span
            // (bias < 2^-64, irrelevant for any use in this workspace)
            let w = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            w % span
        };
        self.start.wrapping_add(draw as i128)
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every `RngCore`
/// (including `dyn RngCore`).
pub trait Rng: RngCore {
    /// Uniform value of type `T` (for `f64`: uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p out of [0,1]: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` by expanding it through SplitMix64 (same
    /// convention as upstream `rand`).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // an all-zero state is a fixed point of xoshiro; nudge it
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: u64 = rng.gen_range(5..=5);
            assert_eq!(y, 5);
            let z: usize = rng.gen_range(0..3);
            assert!(z < 3);
        }
    }

    #[test]
    fn f64_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn works_through_dyn_rng_core() {
        let mut rng = StdRng::seed_from_u64(3);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x = dyn_rng.gen_range(0u64..100);
        assert!(x < 100);
        let p: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&p));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
