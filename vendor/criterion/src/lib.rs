//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the API subset the workspace's benches use — `Criterion`,
//! `criterion_group!`/`criterion_main!`, `bench_function`,
//! `benchmark_group` with `throughput`/`bench_with_input`, `BenchmarkId`
//! and `Throughput` — backed by a simple calibrated wall-clock loop
//! instead of criterion's statistical machinery.
//!
//! Each benchmark is calibrated to run for roughly
//! [`Criterion::MEASURE_TARGET`] (set `ND_BENCH_MS` to override, e.g.
//! `ND_BENCH_MS=50 cargo bench` for a smoke run) and reports the mean
//! time per iteration plus throughput when configured.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Drives one benchmark's timing loop.
pub struct Bencher {
    target: Duration,
    /// (iterations, total elapsed) of the measured run.
    result: Option<(u64, Duration)>,
}

impl Bencher {
    /// Time `f`, first calibrating an iteration count that fills the
    /// measurement window, then measuring one batch of that size.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // warm-up + calibration: double the batch until it costs >= 1/8 of
        // the measurement window
        let mut batch: u64 = 1;
        let per_iter = loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let dt = t0.elapsed();
            if dt * 8 >= self.target || batch >= 1 << 30 {
                break dt.div_f64(batch as f64);
            }
            batch *= 2;
        };
        let iters = (self.target.as_secs_f64() / per_iter.as_secs_f64().max(1e-9))
            .ceil()
            .clamp(1.0, 1e9) as u64;
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.result = Some((iters, t0.elapsed()));
    }
}

/// Throughput annotation for a benchmark.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's identifier within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `<name>/<parameter>`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("ND_BENCH_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(Self::MEASURE_TARGET.as_millis() as u64);
        Criterion {
            target: Duration::from_millis(ms.max(1)),
        }
    }
}

impl Criterion {
    /// Default measurement window per benchmark.
    pub const MEASURE_TARGET: Duration = Duration::from_millis(300);

    /// Run and report one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            target: self.target,
            result: None,
        };
        f(&mut b);
        report(name, b.result, None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and an optional
/// throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark of the group against `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            target: self.criterion.target,
            result: None,
        };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.id),
            b.result,
            self.throughput,
        );
        self
    }

    /// Finish the group (formatting no-op; kept for API compatibility).
    pub fn finish(self) {}
}

fn report(name: &str, result: Option<(u64, Duration)>, throughput: Option<Throughput>) {
    match result {
        None => println!("{name:<44} (no measurement: Bencher::iter never called)"),
        Some((iters, total)) => {
            let per = total.as_secs_f64() / iters as f64;
            let mut line = format!("{name:<44} {:>12}/iter  ({iters} iters)", fmt_time(per));
            if let Some(tp) = throughput {
                let (count, unit) = match tp {
                    Throughput::Elements(n) => (n, "elem"),
                    Throughput::Bytes(n) => (n, "B"),
                };
                line.push_str(&format!("  {:.3e} {unit}/s", count as f64 / per));
            }
            println!("{line}");
        }
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Collect benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Re-export matching upstream's `criterion::black_box`.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        std::env::set_var("ND_BENCH_MS", "1");
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_with_throughput() {
        std::env::set_var("ND_BENCH_MS", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("case", 4), &4u64, |b, &n| b.iter(|| n * 2));
        group.finish();
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" us"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
