//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the subset of proptest the workspace's property tests use:
//! the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//! header), [`Strategy`] with `prop_map`, range and tuple strategies,
//! `prop::collection::{vec, btree_set}`, and the `prop_assert*` macros.
//!
//! Differences from upstream, deliberate for an offline stand-in:
//!
//! * **no shrinking** — a failing case panics with the generated inputs in
//!   the panic message instead of minimizing them;
//! * **fixed derived seeds** — each test function draws its cases from a
//!   deterministic seed derived from the test's name, so failures
//!   reproduce exactly on re-run;
//! * `prop_assert!`/`prop_assert_eq!` panic immediately (upstream collects
//!   them into a `TestCaseResult`).

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::Rng;
pub use rand::SeedableRng;

use std::collections::BTreeSet;
use std::ops::Range;

/// Per-test configuration (`#![proptest_config(ProptestConfig::with_cases(n))]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// FNV-1a over the test name: the per-test base seed. Public because the
/// [`proptest!`] macro expansion calls it.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u64, u32, usize, i64, i32, i128, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);

/// The `prop::` namespace (`use proptest::prelude::*` brings it in scope).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::*;

        /// A `Vec` whose length is uniform in `len` and whose elements come
        /// from `element`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        /// See [`vec()`].
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let n = rng.gen_range(self.len.clone());
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// A `BTreeSet` with a size uniform in `size` (best effort: gives up
        /// growing after a bounded number of duplicate draws, like
        /// upstream's `max_tries`).
        pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            BTreeSetStrategy { element, size }
        }

        /// See [`btree_set`].
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S> Strategy for BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
                let target = rng.gen_range(self.size.clone());
                let mut out = BTreeSet::new();
                let mut tries = 0;
                while out.len() < target && tries < target * 20 + 20 {
                    out.insert(self.element.generate(rng));
                    tries += 1;
                }
                out
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Assert inside a property; panics (no shrinking) with the message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Skip the current case when an assumption fails.
///
/// Expands to an early `return` from the per-case closure, which counts
/// the case as skipped (upstream retries; this stand-in just moves on).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Define property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn my_property(x in 0u64..100, (a, b) in (0u64..10, 0u64..10)) {
///         prop_assert!(x < 100 && a < 10 && b < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($args:tt)* ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let base = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases as u64 {
                    let mut rng = <$crate::__StdRng as $crate::SeedableRng>::seed_from_u64(
                        base.wrapping_add(case.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                    );
                    let case_fn = |rng: &mut $crate::__StdRng| {
                        $crate::__proptest_bind!(rng, $($args)*);
                        $body
                    };
                    case_fn(&mut rng);
                }
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $pat:pat in $strat:expr $(, $($rest:tt)*)?) => {
        let $pat = $crate::Strategy::generate(&($strat), $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
}

#[doc(hidden)]
pub use rand::rngs::StdRng as __StdRng;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 5u64..10, (a, b) in (0u64..4, 1u64..3)) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(a < 4 && (1..3).contains(&b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn collections_and_map(v in prop::collection::vec(0u64..100, 0..8),
                               s in prop::collection::btree_set(0u64..1000, 1..6)) {
            prop_assert!(v.len() < 8);
            prop_assert!(!s.is_empty() && s.len() < 6);
            let doubled = (0u64..50).prop_map(|x| x * 2);
            let d = Strategy::generate(&doubled, &mut rand::SeedableRng::seed_from_u64(1));
            prop_assert_eq!(d % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn assume_skips(x in 0u64..10) {
            prop_assume!(x != 3);
            prop_assert!(x != 3);
        }
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(crate::seed_for("abc"), crate::seed_for("abc"));
        assert_ne!(crate::seed_for("abc"), crate::seed_for("abd"));
    }
}
