//! Quickstart: bounds → optimal schedule → exact analysis → simulation.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full pipeline of the reproduction on one page: compute the
//! Theorem 5.5 bound for a duty-cycle budget, construct the schedule that
//! achieves it, machine-check the worst case with the exact engine, and
//! watch a simulated pair discover each other.

use optimal_nd::analysis::{two_way_worst_case, AnalysisConfig};
use optimal_nd::core::bounds::{optimal_beta, symmetric_bound};
use optimal_nd::core::Tick;
use optimal_nd::protocols::optimal::{symmetric, OptimalParams};
use optimal_nd::sim::{ScheduleBehavior, SimConfig, Simulator, Topology};

fn main() {
    // --- 1. the question the paper answers ---------------------------
    // Two devices, each allowed to be active 5 % of the time (η = 0.05),
    // 36 µs beacons, transmission as expensive as reception (α = 1).
    // What is the best discovery latency ANY protocol can guarantee?
    let (eta, alpha, omega) = (0.05, 1.0, Tick::from_micros(36));
    let bound = symmetric_bound(alpha, omega.as_secs_f64(), eta);
    println!("duty-cycle budget η = {:.1} %", eta * 100.0);
    println!("Theorem 5.5 bound:   L = 4αω/η² = {:.3} ms", bound * 1e3);
    println!(
        "optimal split:       β = η/2α = {:.3} %, γ = η/2 = {:.3} %",
        optimal_beta(eta, alpha) * 100.0,
        eta / 2.0 * 100.0
    );

    // --- 2. construct the schedule that achieves it -------------------
    let opt = symmetric(OptimalParams { omega, alpha, a: 1 }, eta).expect("constructible");
    let b = opt.schedule.beacons.as_ref().unwrap();
    let c = opt.schedule.windows.as_ref().unwrap();
    println!(
        "\nconstruction:        {} beacons every {} (gap λ = {}), window {} per T_C = {}",
        b.n_beacons(),
        b.period(),
        b.mean_gap(),
        c.sum_d(),
        c.period()
    );
    println!(
        "achieved duty cycle: η = {:.4} %",
        opt.achieved.eta(alpha) * 100.0
    );

    // --- 3. machine-check the worst case ------------------------------
    let cfg = AnalysisConfig::with_omega(omega);
    let exact = two_way_worst_case(&opt.schedule, &opt.schedule, &cfg).expect("deterministic");
    println!(
        "\nexact engine:        worst-case two-way latency = {} ({:.4}x the bound)",
        exact,
        exact.as_secs_f64() / bound
    );

    // --- 4. simulate a pair -------------------------------------------
    let mut sim_cfg = SimConfig::paper_baseline(Tick(exact.as_nanos() * 2), 42);
    sim_cfg.collisions = false; // pair analysis: the paper's A.5 assumption
    sim_cfg.half_duplex = false;
    let mut sim = Simulator::new(sim_cfg, Topology::full(2));
    sim.add_device(Box::new(ScheduleBehavior::new(opt.schedule.clone())));
    // the peer starts mid-period: a "random" phase
    sim.add_device(Box::new(ScheduleBehavior::with_phase(
        opt.schedule.clone(),
        Tick::from_micros(1234),
    )));
    sim.stop_when_all_discovered(true);
    let report = sim.run();
    let two_way = report.discovery.two_way(0, 1).expect("discovered");
    println!(
        "simulation:          pair discovered mutually after {} (≤ worst case {} ✓)",
        two_way, exact
    );
    assert!(two_way <= exact);
    println!("\nConclusion: the bound is tight — no protocol can do better, and");
    println!("this schedule does exactly as well. That is the paper's main result.");
}
