//! Coverage maps rendered as ASCII art — the paper's Figure 3, live.
//!
//! ```text
//! cargo run --release --example coverage_map
//! ```
//!
//! Shows how each beacon of a sequence covers a band of initial offsets
//! `Φ₁ ∈ [0, T_C)` (the Ω-rows of the paper's Figure 3b), how an optimal
//! sequence tiles the period exactly once (disjoint + deterministic), and
//! how a badly parametrized sequence leaves offsets uncovered.

use optimal_nd::core::coverage::{min_beacons, CoverageMap, OverlapModel};
use optimal_nd::core::{ReceptionWindows, Tick, Window};
use optimal_nd::protocols::optimal::{unidirectional, OptimalParams};

fn main() {
    let omega = Tick::from_micros(36);

    // --- Figure 3-style example: two windows X and Y per period -------
    println!("=== Figure 3: an ad-hoc beacon sequence against windows X, Y ===\n");
    let windows = ReceptionWindows::new(
        vec![
            Window::new(Tick::from_micros(0), Tick::from_micros(150)),
            Window::new(Tick::from_micros(600), Tick::from_micros(150)),
        ],
        Tick::from_micros(1000),
    )
    .unwrap();
    // seven beacons with irregular gaps, as in the figure
    let rel: Vec<Tick> = [0u64, 340, 650, 1120, 1500, 1820, 2260]
        .iter()
        .map(|&us| Tick::from_micros(us))
        .collect();
    let map = CoverageMap::build(&rel, &windows, omega, OverlapModel::Start);
    print!("{}", map.render_ascii(72));
    println!(
        "\ncoverage Λ = {} of T_C = {}; deterministic: {}; disjoint: {}\n",
        map.coverage(),
        windows.period(),
        map.is_deterministic(),
        map.is_disjoint()
    );

    // --- an optimal tiling: every offset covered exactly once ---------
    println!("=== Theorem 5.1/5.3: the optimal tiling (β = 2 %, γ = 10 %) ===\n");
    let (tx, rx) = unidirectional(
        OptimalParams {
            omega,
            alpha: 1.0,
            a: 1,
        },
        0.02,
        0.10,
    )
    .unwrap();
    let b = tx.schedule.beacons.as_ref().unwrap();
    let c = rx.schedule.windows.as_ref().unwrap();
    let m = min_beacons(c.period(), c.sum_d());
    let map = CoverageMap::build(
        &b.relative_instants(m as usize),
        c,
        omega,
        OverlapModel::Start,
    );
    print!("{}", map.render_ascii(72));
    println!(
        "\nexactly M = ⌈T_C/Σd⌉ = {} beacons tile the period once: optimal\n",
        m
    );

    // --- a resonant (broken) parametrization --------------------------
    println!("=== What goes wrong: beacon gap = T_C (resonance) ===\n");
    let c_res =
        ReceptionWindows::single(Tick::ZERO, Tick::from_micros(100), Tick::from_millis(1)).unwrap();
    let rel: Vec<Tick> = (0..6).map(Tick::from_millis).collect();
    let map = CoverageMap::build(&rel, &c_res, omega, OverlapModel::Start);
    print!("{}", map.render_ascii(72));
    println!("\nevery beacon covers the same offsets — most of the period is never");
    println!("covered, discovery is only probabilistic. This is why BLE-like");
    println!("protocols must avoid rational couplings between T_a and T_s.");
}
