//! A BLE-flavoured fleet: many advertisers, one scanner, real collisions.
//!
//! ```text
//! cargo run --release --example ble_fleet [n_advertisers] [drop_chance_pct]
//! ```
//!
//! The scenario the paper's introduction motivates (billions of BLE
//! devices): `n` peripherals advertise every 100 ms with the spec's random
//! 0–10 ms advDelay while a central scans 11.25 ms out of every 1.28 s.
//! We measure per-device discovery latency, the collision rate (compare
//! Eq. 12), and the effect of smoltcp-style random packet drops.

use optimal_nd::core::bounds::collision_probability;
use optimal_nd::core::Tick;
use optimal_nd::protocols::pi::{BleAdvertiser, PiProtocol};
use optimal_nd::sim::{ScheduleBehavior, SimConfig, Simulator, Topology};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n_adv: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(8);
    let drop_pct: f64 = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(0.0);

    let ble = PiProtocol::ble_general_discovery();
    let horizon = Tick::from_secs(60);
    println!(
        "BLE fleet: {n_adv} advertisers (T_a = {} + advDelay 0–10 ms), one scanner",
        ble.ta
    );
    println!(
        "scanner: d_s = {} per T_s = {}; drop chance {drop_pct} %; horizon {horizon}\n",
        ble.ds, ble.ts
    );

    let mut cfg = SimConfig::paper_baseline(horizon, 2024);
    cfg.drop_probability = drop_pct / 100.0;
    let mut sim = Simulator::new(cfg, Topology::full(n_adv + 1));
    let scanner_id = 0;
    sim.add_device(Box::new(
        ScheduleBehavior::new(ble.scanner().unwrap()).labeled("scanner"),
    ));
    for _ in 0..n_adv {
        sim.add_device(Box::new(BleAdvertiser::new(ble.ta)));
    }
    let report = sim.run();

    println!(
        "{:<10} {:>14} {:>12}",
        "device", "discovered at", "beacons sent"
    );
    for dev in 1..=n_adv {
        let t = report.discovery.one_way(scanner_id, dev);
        println!(
            "adv{:<7} {:>14} {:>12}",
            dev,
            t.map_or("never".to_string(), |t| t.to_string()),
            report.devices[dev].n_tx
        );
    }

    let beta_each = report.devices[1].beta(report.elapsed);
    let predicted_pc = collision_probability(n_adv as u32, beta_each);
    println!("\npackets sent:        {}", report.packets.sent);
    println!("receptions:          {}", report.packets.received);
    println!("lost to collisions:  {}", report.packets.lost_collision);
    println!("lost to faults:      {}", report.packets.lost_fault);
    println!(
        "collision rate:      {:.3} % among receivable packets; Eq. 12 per-beacon \
         probability {:.3} % (β = {:.4} %/device)",
        report.packets.collision_rate() * 100.0,
        predicted_pc * 100.0,
        beta_each * 100.0
    );
    if report.packets.collision_rate() > 2.0 * predicted_pc {
        println!(
            "                     (the measured conditional rate exceeds Eq. 12: two \
             advertisers whose\n                      phases collide once keep colliding \
             until advDelay drifts them apart —\n                      the collision \
             *correlation* the paper's §8 names as the open problem)"
        );
    }
    let discovered = (1..=n_adv)
        .filter(|&d| report.discovery.one_way(scanner_id, d).is_some())
        .count();
    println!("\n{discovered}/{n_adv} advertisers discovered within {horizon}.");
    println!("Try more advertisers (e.g. 100) to watch collisions bite, or add a");
    println!("drop percentage to emulate a hostile channel.");
}
