//! Asymmetric discovery: a coin-cell sensor meets a mains-powered gateway.
//!
//! ```text
//! cargo run --release --example asymmetric_sensor
//! ```
//!
//! The sensor can only afford η = 1 %; the gateway is generous (η = 20 %).
//! Theorem 5.7 says the pair is guaranteed mutual discovery within
//! `4αω/(η_E·η_F)` — and that (within a small factor) splitting a joint
//! budget asymmetrically costs almost nothing. We build the optimal
//! asymmetric schedules, verify both directions analytically, and compare
//! against giving both devices the same (average) budget.

use optimal_nd::analysis::{two_way_worst_case, AnalysisConfig};
use optimal_nd::core::bounds::{asymmetric_bound, symmetric_bound};
use optimal_nd::core::Tick;
use optimal_nd::protocols::optimal::{asymmetric, symmetric, OptimalParams};
use optimal_nd::sim::{ScheduleBehavior, SimConfig, Simulator, Topology};

fn main() {
    let omega = Tick::from_micros(36);
    let params = OptimalParams {
        omega,
        alpha: 1.0,
        a: 1,
    };
    let (eta_sensor, eta_gateway) = (0.01, 0.20);

    println!("sensor budget   η_E = {:.0} %", eta_sensor * 100.0);
    println!("gateway budget  η_F = {:.0} %\n", eta_gateway * 100.0);

    // --- the bound and the construction -------------------------------
    let bound = asymmetric_bound(1.0, omega.as_secs_f64(), eta_sensor, eta_gateway);
    let (sensor, gateway) = asymmetric(params, eta_sensor, eta_gateway).expect("constructible");
    let cfg = AnalysisConfig::with_omega(omega);
    let exact =
        two_way_worst_case(&sensor.schedule, &gateway.schedule, &cfg).expect("deterministic");
    println!("Theorem 5.7 bound:      {:.2} ms", bound * 1e3);
    println!(
        "constructed worst case: {} ({:.4}x)",
        exact,
        exact.as_secs_f64() / bound
    );

    // --- compare with a symmetric split of the same joint budget ------
    let eta_avg = (eta_sensor + eta_gateway) / 2.0;
    let sym = symmetric(params, eta_avg).expect("constructible");
    let sym_exact = two_way_worst_case(&sym.schedule, &sym.schedule, &cfg).unwrap();
    let sym_bound = symmetric_bound(1.0, omega.as_secs_f64(), eta_avg);
    println!(
        "\nsame joint budget split evenly (η = {:.1} % each): {} (bound {:.2} ms)",
        eta_avg * 100.0,
        sym_exact,
        sym_bound * 1e3
    );
    let penalty = exact.as_secs_f64() / sym_exact.as_secs_f64();
    println!(
        "asymmetry penalty: {penalty:.2}x — the (1+r)²/4r factor at r = {:.0} (paper Figure 6: \
         moderate asymmetry is nearly free, extreme asymmetry is not)",
        eta_gateway / eta_sensor
    );

    // --- simulate the pair meeting ------------------------------------
    let mut sim_cfg = SimConfig::paper_baseline(Tick(exact.as_nanos() * 2), 7);
    sim_cfg.collisions = false;
    sim_cfg.half_duplex = false;
    let mut sim = Simulator::new(sim_cfg, Topology::full(2));
    sim.add_device(Box::new(
        ScheduleBehavior::new(sensor.schedule.clone()).labeled("sensor"),
    ));
    sim.add_device(Box::new(
        ScheduleBehavior::with_phase(gateway.schedule.clone(), Tick::from_micros(7777))
            .labeled("gateway"),
    ));
    sim.stop_when_all_discovered(true);
    let report = sim.run();
    println!(
        "\nsimulated encounter: gateway→sensor heard at {}, sensor→gateway at {}",
        report
            .discovery
            .one_way(0, 1)
            .map_or("never".into(), |t| t.to_string()),
        report
            .discovery
            .one_way(1, 0)
            .map_or("never".into(), |t| t.to_string()),
    );
    println!(
        "measured duty cycles: sensor η = {:.3} %, gateway η = {:.3} %",
        report.devices[0].eta(report.elapsed, 1.0) * 100.0,
        report.devices[1].eta(report.elapsed, 1.0) * 100.0
    );
}
