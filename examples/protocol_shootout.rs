//! Protocol shootout: every implemented protocol at the same duty budget.
//!
//! ```text
//! cargo run --release --example protocol_shootout [eta_pct]
//! ```
//!
//! Instantiates the paper-optimal slotless construction, diff-codes,
//! Searchlight, Disco, U-Connect and the code-based variant at the same
//! (slot-domain) duty cycle, measures their exact worst/mean one-way
//! latency, and relates each to the fundamental bounds — a miniature of
//! the paper's Section 6 classification plus a randomized simulation
//! sanity check of the winner.

use optimal_nd::analysis::montecarlo::{pair_trials, LatencySummary, PairMetric};
use optimal_nd::analysis::{one_way_coverage, AnalysisConfig};
use optimal_nd::core::bounds::symmetric_bound;
use optimal_nd::core::Tick;
use optimal_nd::protocols::ProtocolKind;
use optimal_nd::sim::SimConfig;

fn main() {
    let eta: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .map(|p: f64| p / 100.0)
        .unwrap_or(0.10);
    let slot = Tick::from_millis(1);
    let omega = Tick::from_micros(36);
    let cfg = AnalysisConfig::with_omega(omega);

    println!(
        "shootout at η ≈ {:.0} % (slot 1 ms, ω = 36 µs, α = 1)\n",
        eta * 100.0
    );
    println!(
        "{:<18} {:>9} {:>9} {:>14} {:>14} {:>11} {:>10}",
        "protocol", "η meas", "β meas", "worst latency", "mean latency", "vs optimal", "uncovered"
    );

    let mut best_schedule = None;
    for kind in ProtocolKind::all() {
        let sched = match kind.schedule_for_eta(eta, slot, omega) {
            Ok(s) => s,
            Err(e) => {
                println!("{:<18} unbuildable at this η: {e}", kind.name());
                continue;
            }
        };
        let dc = sched.duty_cycle();
        let eta_meas = dc.eta(1.0);
        let cc = one_way_coverage(
            sched.beacons.as_ref().unwrap(),
            sched.windows.as_ref().unwrap(),
            &cfg,
        )
        .expect("analyzable");
        let bound = symmetric_bound(1.0, omega.as_secs_f64(), eta_meas);
        println!(
            "{:<18} {:>8.3}% {:>8.3}% {:>14} {:>13.1}ms {:>10.1}x {:>9.2}%",
            kind.name(),
            eta_meas * 100.0,
            dc.beta * 100.0,
            cc.worst_covered.to_string(),
            cc.mean_covered * 1e3,
            cc.worst_covered.as_secs_f64() / bound,
            cc.undiscovered_probability * 100.0,
        );
        if matches!(kind, ProtocolKind::OptimalSlotless) {
            best_schedule = Some((sched, cc.worst_covered));
        }
    }

    // --- randomized trials on the optimal schedule --------------------
    if let Some((sched, worst)) = best_schedule {
        let mut sim = SimConfig::paper_baseline(Tick(worst.as_nanos() * 3), 5);
        sim.collisions = false;
        sim.half_duplex = false;
        let lat = pair_trials(&sched, &sched, PairMetric::OneWay, &sim, 100);
        let s = LatencySummary::from_latencies(&lat);
        println!(
            "\noptimal-slotless over 100 random phases: p50 {:.1} ms, p95 {:.1} ms, \
             max {:.1} ms (worst case {}), failures {}",
            s.p50 * 1e3,
            s.p95 * 1e3,
            s.max * 1e3,
            worst,
            s.failures
        );
    }
    println!("\nReading: only the slotless tiling tracks the 4αω/η² bound (1x);");
    println!("slotted designs pay orders of magnitude in this metric because their");
    println!("channel utilization is far below the optimal β = η/2α (paper §6.2).");
}
