//! Mesh bootstrap: N devices discover each other all at once.
//!
//! ```text
//! cargo run --release --example mesh_bootstrap [n_devices] [eta_pct]
//! ```
//!
//! The scenario behind the paper's collision analysis (§5.2.2, Figure 7):
//! a room full of devices powers on and every pair must find every other
//! pair. With the pairwise-optimal schedule, collisions now matter — we
//! report the full-mesh completion time, the pairwise latency spread, and
//! the collision counters, for plain and round-jittered schedules.

use optimal_nd::core::bounds::collision_probability;
use optimal_nd::core::Tick;
use optimal_nd::protocols::optimal::{symmetric, OptimalParams};
use optimal_nd::protocols::RoundJittered;
use optimal_nd::sim::{ScheduleBehavior, SimConfig, Simulator, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(6);
    let eta: f64 = args
        .get(1)
        .and_then(|a| a.parse().ok())
        .map(|p: f64| p / 100.0)
        .unwrap_or(0.05);

    let opt = symmetric(OptimalParams::paper_default(), eta).expect("constructible");
    let pair_worst = opt.predicted_latency;
    println!(
        "mesh of {n} devices at η = {:.1} % each; pairwise worst case {} (Thm 5.5)",
        eta * 100.0,
        pair_worst
    );
    let beta = opt.achieved.beta;
    println!(
        "per-device channel utilization β = {:.2} % → Eq. 12 collision probability {:.2} %\n",
        beta * 100.0,
        collision_probability(n as u32, beta) * 100.0
    );

    for (label, jitter) in [("plain repetitive", false), ("round-jittered", true)] {
        let mut rng = StdRng::seed_from_u64(99);
        let cfg = SimConfig::paper_baseline(Tick(pair_worst.as_nanos() * 12), 1);
        let mut sim = Simulator::new(cfg, Topology::full(n));
        let period = opt
            .schedule
            .windows
            .as_ref()
            .map(|c| c.period())
            .unwrap_or(Tick(1));
        for _ in 0..n {
            if jitter {
                sim.add_device(Box::new(RoundJittered::new(opt.schedule.clone())));
            } else {
                let phase = Tick(rng.gen_range(0..period.as_nanos()));
                sim.add_device(Box::new(ScheduleBehavior::with_phase(
                    opt.schedule.clone(),
                    phase,
                )));
            }
        }
        sim.stop_when_all_discovered(true);
        let report = sim.run();

        let mut latencies: Vec<Tick> = Vec::new();
        let mut missing = 0usize;
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    match report.discovery.one_way(a, b) {
                        Some(t) => latencies.push(t),
                        None => missing += 1,
                    }
                }
            }
        }
        latencies.sort();
        println!("--- {label} ---");
        match report.discovery.completion_time() {
            Some(t) => println!(
                "full mesh complete at {t} ({:.1} pairwise worst cases)",
                t.as_secs_f64() / pair_worst.as_secs_f64()
            ),
            None => println!("mesh NOT complete within horizon ({missing} ordered pairs missing)"),
        }
        if !latencies.is_empty() {
            println!(
                "pairwise latencies: median {}, p90 {}, max {}",
                latencies[latencies.len() / 2],
                latencies[latencies.len() * 9 / 10],
                latencies.last().unwrap()
            );
        }
        println!(
            "packets {} | received {} | collisions {} | self-blocked {}\n",
            report.packets.sent,
            report.packets.received,
            report.packets.lost_collision,
            report.packets.lost_self_blocking
        );
    }
    println!("Try larger meshes (e.g. 15 devices at 10 %) to watch collision");
    println!("correlation stall the plain schedules while jittered ones complete.");
}
